// Package rocmsmi simulates the AMD ROCm System Management Interface
// surface the SYnergy runtime uses on AMD GPUs: DPM (dynamic power
// management) frequency levels, performance-level control (auto vs
// manual), power readings and the fine-resolution energy accumulator of
// CDNA boards. Unlike NVIDIA boards, the MI100 exposes no default
// application clock — the driver auto-scales with the workload (§2.1).
package rocmsmi

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"synergy/internal/fault"
	"synergy/internal/hw"
)

// SamplingPeriodSec is the telemetry period of the SMU energy
// accumulator; CDNA boards resolve energy much finer than NVML's 15 ms
// power polling.
const SamplingPeriodSec = 0.001

// Common SMI-style errors.
var (
	ErrUninitialized = errors.New("rocmsmi: not initialized")
	ErrInvalidArg    = errors.New("rocmsmi: invalid argument")
	ErrNoPermission  = errors.New("rocmsmi: permission denied")
	// ErrTimeout is the SMU failing to acknowledge a request in time —
	// the transient failure mode of DPM writes under load.
	ErrTimeout = errors.New("rocmsmi: operation timed out")
)

// Fault-injection sites exposed by this package (qualified per device by
// the hw.Device label, or "gpu<i>" when unlabelled).
const (
	SiteSetClockLevel = "rocmsmi.set_clock_level"
	SiteSetPerfAuto   = "rocmsmi.set_perf_auto"
)

func init() {
	fault.RegisterError("rocmsmi.no_permission", ErrNoPermission)
	fault.RegisterError("rocmsmi.timeout", ErrTimeout)
}

// PerfLevel is the rsmi_dev_perf_level setting.
type PerfLevel int

const (
	// PerfAuto lets the driver pick the DPM state per workload.
	PerfAuto PerfLevel = iota
	// PerfManual pins the DPM state chosen with SetClockLevel.
	PerfManual
)

// User identifies callers of state-changing APIs; writing to the SMI
// sysfs interface requires root on production systems.
type User struct {
	Name string
	Root bool
}

// Root is the superuser identity.
var Root = User{Name: "root", Root: true}

// Library is a simulated SMI bound to a set of AMD devices.
type Library struct {
	mu      sync.Mutex
	devices []*hw.Device
	inited  bool
	level   []PerfLevel
}

// smiUnrestrictedFlag is the persistent driver flag marking devices
// where the scheduler plugin has granted clock control to regular users
// for the duration of a job.
const smiUnrestrictedFlag = "smi.unrestricted"

// New creates a library managing the given AMD devices.
func New(devices ...*hw.Device) (*Library, error) {
	for _, d := range devices {
		if d.Spec().Vendor != hw.AMD {
			return nil, fmt.Errorf("rocmsmi: device %s is not an AMD device", d.Spec().Name)
		}
	}
	return &Library{devices: devices}, nil
}

// Init initialises the library (rsmi_init).
func (l *Library) Init() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.inited {
		return errors.New("rocmsmi: already initialized")
	}
	l.inited = true
	l.level = make([]PerfLevel, len(l.devices))
	return nil
}

// Shutdown tears the library down (rsmi_shut_down).
func (l *Library) Shutdown() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.inited {
		return ErrUninitialized
	}
	l.inited = false
	return nil
}

// NumDevices returns the number of managed devices.
func (l *Library) NumDevices() (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.inited {
		return 0, ErrUninitialized
	}
	return len(l.devices), nil
}

// Device is a handle to one board.
type Device struct {
	lib *Library
	idx int
}

// DeviceByIndex returns a handle for device i.
func (l *Library) DeviceByIndex(i int) (*Device, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.inited {
		return nil, ErrUninitialized
	}
	if i < 0 || i >= len(l.devices) {
		return nil, fmt.Errorf("%w: device index %d", ErrInvalidArg, i)
	}
	return &Device{lib: l, idx: i}, nil
}

func (d *Device) hw() *hw.Device { return d.lib.devices[d.idx] }

// checkFault consults the device's fault injector, applying injected
// latency to the device timeline before returning any injected error.
// Each consultation is one vendor driver call: with telemetry attached
// it increments synergy_vendor_calls_total (and
// synergy_vendor_faults_total on an injected error), matching the
// injector's per-site CallCount exactly.
func (d *Device) checkFault(base string) error {
	label := d.hw().Label()
	if label == "" {
		label = fmt.Sprintf("gpu%d", d.idx)
	}
	delay, err := d.hw().FaultInjector().Check(base + ":" + label)
	if tel := d.hw().Telemetry(); tel != nil {
		call := strings.TrimPrefix(base, "rocmsmi.")
		tel.Counter("synergy_vendor_calls_total", "lib", "rocmsmi", "call", call, "device", label).Inc()
		if err != nil {
			tel.Counter("synergy_vendor_faults_total", "lib", "rocmsmi", "call", call, "device", label).Inc()
		}
	}
	if delay > 0 {
		d.hw().AdvanceIdle(delay)
	}
	return err
}

func (d *Device) checkInit() error {
	d.lib.mu.Lock()
	defer d.lib.mu.Unlock()
	if !d.lib.inited {
		return ErrUninitialized
	}
	return nil
}

// Name returns the board name.
func (d *Device) Name() (string, error) {
	if err := d.checkInit(); err != nil {
		return "", err
	}
	return d.hw().Spec().Name, nil
}

// ClockLevels returns the DPM core frequency table (ascending MHz).
func (d *Device) ClockLevels() ([]int, error) {
	if err := d.checkInit(); err != nil {
		return nil, err
	}
	spec := d.hw().Spec()
	out := make([]int, len(spec.CoreFreqsMHz))
	copy(out, spec.CoreFreqsMHz)
	return out, nil
}

// MemClockMHz returns the fixed HBM clock.
func (d *Device) MemClockMHz() (int, error) {
	if err := d.checkInit(); err != nil {
		return 0, err
	}
	return d.hw().Spec().MemFreqMHz, nil
}

// PerfLevel returns the current performance-level mode.
func (d *Device) PerfLevel() (PerfLevel, error) {
	if err := d.checkInit(); err != nil {
		return 0, err
	}
	d.lib.mu.Lock()
	defer d.lib.mu.Unlock()
	return d.lib.level[d.idx], nil
}

func (d *Device) writable(u User) bool {
	return u.Root || d.hw().DriverFlag(smiUnrestrictedFlag)
}

// SetUnrestricted toggles whether regular users may change clocks on this
// device (the equivalent of the plugin's privilege window). Root only.
func (d *Device) SetUnrestricted(u User, unrestricted bool) error {
	if err := d.checkInit(); err != nil {
		return err
	}
	if !u.Root {
		return fmt.Errorf("%w: only root may change device restrictions", ErrNoPermission)
	}
	d.hw().SetDriverFlag(smiUnrestrictedFlag, unrestricted)
	return nil
}

// SetPerfLevelAuto returns the device to driver-managed DPM selection.
func (d *Device) SetPerfLevelAuto(u User) error {
	if err := d.checkInit(); err != nil {
		return err
	}
	if err := d.checkFault(SiteSetPerfAuto); err != nil {
		return fmt.Errorf("setting auto perf level: %w", err)
	}
	if !d.writable(u) {
		return fmt.Errorf("%w: user %q may not change the performance level", ErrNoPermission, u.Name)
	}
	d.lib.mu.Lock()
	d.lib.level[d.idx] = PerfAuto
	d.lib.mu.Unlock()
	d.hw().ResetAppClock()
	return nil
}

// SetClockLevel pins the core clock to the DPM state with the given
// index (rsmi_dev_gpu_clk_freq_set), switching to manual perf level.
func (d *Device) SetClockLevel(u User, level int) error {
	if err := d.checkInit(); err != nil {
		return err
	}
	if err := d.checkFault(SiteSetClockLevel); err != nil {
		return fmt.Errorf("setting DPM level: %w", err)
	}
	if !d.writable(u) {
		return fmt.Errorf("%w: user %q may not set clock levels", ErrNoPermission, u.Name)
	}
	spec := d.hw().Spec()
	if level < 0 || level >= len(spec.CoreFreqsMHz) {
		return fmt.Errorf("%w: DPM level %d out of range [0, %d)", ErrInvalidArg, level, len(spec.CoreFreqsMHz))
	}
	d.lib.mu.Lock()
	d.lib.level[d.idx] = PerfManual
	d.lib.mu.Unlock()
	return d.hw().SetAppClock(spec.CoreFreqsMHz[level])
}

// CurrentClockMHz reports the pinned core clock, or 0 in auto mode.
func (d *Device) CurrentClockMHz() (int, error) {
	if err := d.checkInit(); err != nil {
		return 0, err
	}
	return d.hw().AppClockMHz(), nil
}

// SetPowerCap sets the board power cap in watts
// (rsmi_dev_power_cap_set). Root only; 0 restores the default.
func (d *Device) SetPowerCap(u User, watts float64) error {
	if err := d.checkInit(); err != nil {
		return err
	}
	if !u.Root {
		return fmt.Errorf("%w: only root may change the power cap", ErrNoPermission)
	}
	if err := d.hw().SetPowerLimit(watts); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidArg, err)
	}
	return nil
}

// PowerCap returns the active power cap in watts.
func (d *Device) PowerCap() (float64, error) {
	if err := d.checkInit(); err != nil {
		return 0, err
	}
	return d.hw().PowerLimit(), nil
}

// PowerWatts returns the instantaneous board power.
func (d *Device) PowerWatts() (float64, error) {
	if err := d.checkInit(); err != nil {
		return 0, err
	}
	dev := d.hw()
	now := dev.Now()
	tick := float64(int64(now/SamplingPeriodSec)) * SamplingPeriodSec
	return dev.PowerAt(tick), nil
}

// EnergyCountJoules returns the accumulated energy counter since init.
func (d *Device) EnergyCountJoules() (float64, error) {
	if err := d.checkInit(); err != nil {
		return 0, err
	}
	dev := d.hw()
	return dev.SampledEnergyBetween(0, dev.Now(), SamplingPeriodSec), nil
}

// SampledEnergyBetween integrates the sampled power trace over a window.
func (d *Device) SampledEnergyBetween(t0, t1 float64) (float64, error) {
	if err := d.checkInit(); err != nil {
		return 0, err
	}
	return d.hw().SampledEnergyBetween(t0, t1, SamplingPeriodSec), nil
}
