package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"synergy/internal/hw"
)

// syntheticSweep builds a plausible DVFS sweep: time falls with
// frequency, energy is U-shaped with its minimum in the interior.
func syntheticSweep(t *testing.T) *Sweep {
	t.Helper()
	var pts []Point
	for f := 400; f <= 1500; f += 100 {
		fr := float64(f) / 1000
		time := 1.0/fr + 0.05
		power := 30 + 120*fr*fr
		pts = append(pts, Point{FreqMHz: f, TimeSec: time, EnergyJ: power * time})
	}
	s, err := NewSweep(pts, 1300)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// hwSweep builds a sweep from the actual hardware model, for
// integration-grade checks.
func hwSweep(t *testing.T, w hw.Workload) *Sweep {
	t.Helper()
	spec := hw.V100()
	ms, err := spec.Sweep(w)
	if err != nil {
		t.Fatal(err)
	}
	pts := make([]Point, len(ms))
	for i, m := range ms {
		pts[i] = Point{FreqMHz: spec.CoreFreqsMHz[i], TimeSec: m.TimeSec, EnergyJ: m.EnergyJ}
	}
	s, err := NewSweep(pts, spec.DefaultCoreMHz)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestParseTargetRoundTrip(t *testing.T) {
	t.Parallel()
	for _, tgt := range StandardTargets {
		got, err := ParseTarget(tgt.String())
		if err != nil {
			t.Fatalf("ParseTarget(%s): %v", tgt, err)
		}
		if got != tgt {
			t.Fatalf("round trip %s -> %s", tgt, got)
		}
	}
	if _, err := ParseTarget("BOGUS"); err == nil {
		t.Fatal("bogus target parsed")
	}
	if _, err := ParseTarget("ES_0"); err == nil {
		t.Fatal("ES_0 accepted (x must be positive)")
	}
	if _, err := ParseTarget("ES_150"); err == nil {
		t.Fatal("ES_150 accepted (x must be <= 100)")
	}
}

func TestNewSweepValidation(t *testing.T) {
	t.Parallel()
	if _, err := NewSweep(nil, 100); err == nil {
		t.Error("empty sweep accepted")
	}
	pts := []Point{{FreqMHz: 100, TimeSec: 1, EnergyJ: 1}}
	if _, err := NewSweep(pts, 200); err == nil {
		t.Error("baseline not in sweep accepted")
	}
	dup := []Point{
		{FreqMHz: 100, TimeSec: 1, EnergyJ: 1},
		{FreqMHz: 100, TimeSec: 2, EnergyJ: 2},
	}
	if _, err := NewSweep(dup, 100); err == nil {
		t.Error("duplicate frequency accepted")
	}
	bad := []Point{{FreqMHz: 100, TimeSec: -1, EnergyJ: 1}}
	if _, err := NewSweep(bad, 100); err == nil {
		t.Error("negative time accepted")
	}
}

func TestSweepSortsPoints(t *testing.T) {
	t.Parallel()
	pts := []Point{
		{FreqMHz: 300, TimeSec: 1, EnergyJ: 3},
		{FreqMHz: 100, TimeSec: 3, EnergyJ: 1},
		{FreqMHz: 200, TimeSec: 2, EnergyJ: 2},
	}
	s, err := NewSweep(pts, 200)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(s.Points); i++ {
		if s.Points[i].FreqMHz <= s.Points[i-1].FreqMHz {
			t.Fatal("points not sorted by frequency")
		}
	}
	if s.BaselinePoint().FreqMHz != 200 {
		t.Fatalf("baseline = %d, want 200", s.BaselinePoint().FreqMHz)
	}
}

func TestMaxPerfAndMinEnergySelection(t *testing.T) {
	t.Parallel()
	s := syntheticSweep(t)
	mp, err := s.Select(MaxPerf)
	if err != nil {
		t.Fatal(err)
	}
	if mp.FreqMHz != 1500 {
		t.Errorf("MAX_PERF chose %d MHz, want 1500", mp.FreqMHz)
	}
	me, err := s.Select(MinEnergy)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range s.Points {
		if p.EnergyJ < me.EnergyJ {
			t.Errorf("MIN_ENERGY missed a better point at %d MHz", p.FreqMHz)
		}
	}
}

// TestFig4EDPOrdering pins the Fig. 4 observation: the ED2P optimum sits
// at a frequency at or above the EDP optimum, which sits at or above the
// energy optimum (ED2P weighs delay more).
func TestFig4EDPOrdering(t *testing.T) {
	t.Parallel()
	for _, s := range []*Sweep{
		syntheticSweep(t),
		hwSweep(t, hw.Workload{Name: "bs", Items: 1 << 22, FloatOps: 180, SFOps: 10, GlobalBytes: 20}),
	} {
		me, _ := s.Select(MinEnergy)
		edp, _ := s.Select(MinEDP)
		ed2p, _ := s.Select(MinED2P)
		if edp.FreqMHz < me.FreqMHz {
			t.Errorf("EDP optimum (%d) below energy optimum (%d)", edp.FreqMHz, me.FreqMHz)
		}
		if ed2p.FreqMHz < edp.FreqMHz {
			t.Errorf("ED2P optimum (%d) below EDP optimum (%d)", ed2p.FreqMHz, edp.FreqMHz)
		}
	}
}

func TestESDefinition(t *testing.T) {
	t.Parallel()
	s := syntheticSweep(t)
	def := s.BaselinePoint()
	me, _ := s.Select(MinEnergy)
	for _, x := range []float64{25, 50, 75, 100} {
		p, err := s.Select(ES(x))
		if err != nil {
			t.Fatal(err)
		}
		targetE := def.EnergyJ - x/100*(def.EnergyJ-me.EnergyJ)
		if p.EnergyJ > targetE*(1+1e-9) {
			t.Errorf("ES_%g: energy %.4g exceeds target %.4g", x, p.EnergyJ, targetE)
		}
		// Best-performing among qualifying points.
		for _, q := range s.Points {
			if q.EnergyJ <= targetE && q.TimeSec < p.TimeSec {
				t.Errorf("ES_%g: %d MHz qualifies and is faster", x, q.FreqMHz)
			}
		}
	}
	// ES_100 is the minimum-energy configuration.
	p, _ := s.Select(ES(100))
	if p.FreqMHz != me.FreqMHz {
		t.Errorf("ES_100 = %d MHz, want min-energy %d", p.FreqMHz, me.FreqMHz)
	}
}

func TestPLDefinition(t *testing.T) {
	t.Parallel()
	s := syntheticSweep(t)
	def := s.BaselinePoint()
	me, _ := s.Select(MinEnergy)
	for _, x := range []float64{25, 50, 75, 100} {
		p, err := s.Select(PL(x))
		if err != nil {
			t.Fatal(err)
		}
		targetT := def.TimeSec + x/100*(me.TimeSec-def.TimeSec)
		if p.TimeSec > targetT*(1+1e-9) {
			t.Errorf("PL_%g: time %.4g exceeds target %.4g", x, p.TimeSec, targetT)
		}
		for _, q := range s.Points {
			if q.TimeSec <= targetT && q.EnergyJ < p.EnergyJ {
				t.Errorf("PL_%g: %d MHz qualifies and uses less energy", x, q.FreqMHz)
			}
		}
	}
}

// Property (§5): ES_x energy is non-increasing and its time
// non-decreasing as x grows; dually for PL_x.
func TestESPLMonotoneInX(t *testing.T) {
	t.Parallel()
	s := hwSweep(t, hw.Workload{Name: "mono", Items: 1 << 22, FloatOps: 120, GlobalBytes: 40})
	prevES, _ := s.Select(ES(10))
	prevPL, _ := s.Select(PL(10))
	for x := 20.0; x <= 100; x += 10 {
		es, _ := s.Select(ES(x))
		if es.EnergyJ > prevES.EnergyJ*(1+1e-9) {
			t.Errorf("ES energy increased from x=%g", x-10)
		}
		if es.TimeSec < prevES.TimeSec*(1-1e-9) {
			t.Errorf("ES time decreased from x=%g", x-10)
		}
		prevES = es
		pl, _ := s.Select(PL(x))
		if pl.EnergyJ > prevPL.EnergyJ*(1+1e-9) {
			t.Errorf("PL energy increased from x=%g", x-10)
		}
		prevPL = pl
	}
}

func TestESWithNoSavingsReturnsBaseline(t *testing.T) {
	t.Parallel()
	// Energy strictly increasing as frequency falls: no savings exist.
	var pts []Point
	for f := 400; f <= 1200; f += 200 {
		fr := float64(f) / 1000
		time := 1.0 / fr
		pts = append(pts, Point{FreqMHz: f, TimeSec: time, EnergyJ: 100 * time})
	}
	s, err := NewSweep(pts, 1200)
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.Select(ES(50))
	if err != nil {
		t.Fatal(err)
	}
	if p.FreqMHz != 1200 {
		t.Fatalf("ES_50 with no savings chose %d MHz, want baseline 1200", p.FreqMHz)
	}
}

// Pareto-front properties, checked with randomized sweeps.
func TestParetoFrontProperties(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 5 + rng.Intn(40)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{
				FreqMHz: 100 + i*10,
				TimeSec: 0.1 + rng.Float64(),
				EnergyJ: 1 + 10*rng.Float64(),
			}
		}
		s, err := NewSweep(pts, 100)
		if err != nil {
			t.Fatal(err)
		}
		front := s.ParetoFront()
		if len(front) == 0 {
			t.Fatal("empty Pareto front")
		}
		// (1) No point on the front dominates another front point.
		for i := range front {
			for j := range front {
				if i != j && dominates(front[i], front[j]) {
					t.Fatalf("front point %d dominates front point %d", i, j)
				}
			}
		}
		// (2) Every off-front point is dominated by some front point.
		onFront := map[int]bool{}
		for _, p := range front {
			onFront[p.FreqMHz] = true
		}
		for _, p := range s.Points {
			if onFront[p.FreqMHz] {
				continue
			}
			dominated := false
			for _, q := range front {
				if dominates(q, p) {
					dominated = true
					break
				}
			}
			if !dominated {
				t.Fatalf("off-front point at %d MHz not dominated", p.FreqMHz)
			}
		}
		// (3) Front sorted by ascending time, descending energy.
		for i := 1; i < len(front); i++ {
			if front[i].TimeSec < front[i-1].TimeSec || front[i].EnergyJ > front[i-1].EnergyJ {
				t.Fatal("front not monotone")
			}
		}
	}
}

func TestCharacterizeBaselineIsUnity(t *testing.T) {
	t.Parallel()
	s := syntheticSweep(t)
	cs := s.Characterize()
	for _, c := range cs {
		if c.FreqMHz == 1300 {
			if math.Abs(c.Speedup-1) > 1e-12 || math.Abs(c.NormEnergy-1) > 1e-12 {
				t.Fatalf("baseline char point = %+v, want (1, 1)", c)
			}
			return
		}
	}
	t.Fatal("baseline point missing from characterisation")
}

func TestObjectiveValue(t *testing.T) {
	t.Parallel()
	p := Point{FreqMHz: 1000, TimeSec: 2, EnergyJ: 3}
	cases := []struct {
		tgt  Target
		want float64
	}{
		{MaxPerf, 2}, {MinEnergy, 3}, {MinEDP, 6}, {MinED2P, 12},
		{ES(25), 3}, {PL(25), 2},
	}
	for _, c := range cases {
		if got := ObjectiveValue(c.tgt, p); got != c.want {
			t.Errorf("ObjectiveValue(%s) = %v, want %v", c.tgt, got, c.want)
		}
	}
}

func TestPointAt(t *testing.T) {
	t.Parallel()
	s := syntheticSweep(t)
	p, ok := s.PointAt(700)
	if !ok || p.FreqMHz != 700 {
		t.Fatalf("PointAt(700) = %+v, %v", p, ok)
	}
	if _, ok := s.PointAt(701); ok {
		t.Fatal("PointAt found a non-existent frequency")
	}
}

func TestEDPandED2P(t *testing.T) {
	t.Parallel()
	f := func(e, tm float64) bool {
		e, tm = math.Abs(e)+0.1, math.Abs(tm)+0.1
		if math.IsInf(e, 0) || math.IsInf(tm, 0) {
			return true
		}
		p := Point{TimeSec: tm, EnergyJ: e}
		return p.EDP() == e*tm && p.ED2P() == e*tm*tm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// FuzzParseTarget checks the parser never panics and that successful
// parses round-trip through String.
func FuzzParseTarget(f *testing.F) {
	for _, s := range []string{"MIN_EDP", "ES_25", "PL_100", "ES_-1", "garbage", "ES_", "PL_abc"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		tgt, err := ParseTarget(s)
		if err != nil {
			return
		}
		back, err := ParseTarget(tgt.String())
		if err != nil {
			t.Fatalf("round trip of %q -> %s failed: %v", s, tgt, err)
		}
		if back != tgt {
			t.Fatalf("round trip changed target: %s -> %s", tgt, back)
		}
	})
}
