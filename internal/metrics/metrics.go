// Package metrics implements the energy metrics of §5: the classic
// energy-delay products (EDP, ED2P), the paper's new energy-saving
// (ES_x) and performance-loss (PL_x) tradeoff metrics, Pareto fronts
// over frequency sweeps, and the target selection used by both the
// ground-truth characterisation and the model's frequency search.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// TargetKind enumerates the energy-target families.
type TargetKind int

const (
	// KindMaxPerf selects the best-performing configuration.
	KindMaxPerf TargetKind = iota
	// KindMinEnergy selects the lowest-energy configuration.
	KindMinEnergy
	// KindMinEDP minimises energy × time.
	KindMinEDP
	// KindMinED2P minimises energy × time².
	KindMinED2P
	// KindES selects the best-performing configuration achieving x% of
	// the potential energy savings (baseline → minimum energy).
	KindES
	// KindPL selects the most energy-efficient configuration within x%
	// of the potential performance loss (baseline → min-energy config).
	KindPL
)

// Target is a user-selectable energy target for a kernel (§4.3, §5).
type Target struct {
	Kind TargetKind
	// X is the percentage parameter of ES_x / PL_x (0–100].
	X float64
}

// The fixed targets.
var (
	MaxPerf   = Target{Kind: KindMaxPerf}
	MinEnergy = Target{Kind: KindMinEnergy}
	MinEDP    = Target{Kind: KindMinEDP}
	MinED2P   = Target{Kind: KindMinED2P}
)

// ES returns the energy-saving target ES_x.
func ES(x float64) Target { return Target{Kind: KindES, X: x} }

// PL returns the performance-loss target PL_x.
func PL(x float64) Target { return Target{Kind: KindPL, X: x} }

// String renders the target in the paper's notation.
func (t Target) String() string {
	switch t.Kind {
	case KindMaxPerf:
		return "MAX_PERF"
	case KindMinEnergy:
		return "MIN_ENERGY"
	case KindMinEDP:
		return "MIN_EDP"
	case KindMinED2P:
		return "MIN_ED2P"
	case KindES:
		return fmt.Sprintf("ES_%g", t.X)
	case KindPL:
		return fmt.Sprintf("PL_%g", t.X)
	default:
		return fmt.Sprintf("Target(%d)", int(t.Kind))
	}
}

// Validate reports an error for ill-formed targets.
func (t Target) Validate() error {
	switch t.Kind {
	case KindMaxPerf, KindMinEnergy, KindMinEDP, KindMinED2P:
		return nil
	case KindES, KindPL:
		if t.X <= 0 || t.X > 100 || math.IsNaN(t.X) {
			return fmt.Errorf("metrics: %s: percentage must be in (0, 100]", t)
		}
		return nil
	default:
		return fmt.Errorf("metrics: unknown target kind %d", int(t.Kind))
	}
}

// ParseTarget parses the paper's notation: MAX_PERF, MIN_ENERGY,
// MIN_EDP, MIN_ED2P, ES_25, PL_50, ...
func ParseTarget(s string) (Target, error) {
	switch s {
	case "MAX_PERF":
		return MaxPerf, nil
	case "MIN_ENERGY":
		return MinEnergy, nil
	case "MIN_EDP":
		return MinEDP, nil
	case "MIN_ED2P":
		return MinED2P, nil
	}
	var x float64
	if n, err := fmt.Sscanf(s, "ES_%f", &x); n == 1 && err == nil {
		t := ES(x)
		return t, t.Validate()
	}
	if n, err := fmt.Sscanf(s, "PL_%f", &x); n == 1 && err == nil {
		t := PL(x)
		return t, t.Validate()
	}
	return Target{}, fmt.Errorf("metrics: cannot parse target %q", s)
}

// StandardTargets is the set the paper evaluates (Fig. 9, Table 2,
// Fig. 10).
var StandardTargets = []Target{
	MaxPerf, MinEnergy, MinEDP, MinED2P,
	ES(25), ES(50), ES(75), PL(25), PL(50), PL(75),
}

// Point is one frequency configuration with its measured (or predicted)
// time and energy.
type Point struct {
	FreqMHz int
	TimeSec float64
	EnergyJ float64
}

// EDP returns energy × time.
func (p Point) EDP() float64 { return p.EnergyJ * p.TimeSec }

// ED2P returns energy × time².
func (p Point) ED2P() float64 { return p.EnergyJ * p.TimeSec * p.TimeSec }

// Sweep is a full frequency characterisation of one kernel, with the
// baseline (default-frequency) configuration identified.
type Sweep struct {
	Points   []Point // ascending frequency
	Baseline int     // index into Points
}

// NewSweep assembles a sweep, sorting by frequency and locating the
// baseline frequency (which must be present).
func NewSweep(points []Point, baselineFreq int) (*Sweep, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("metrics: empty sweep")
	}
	ps := make([]Point, len(points))
	copy(ps, points)
	sort.Slice(ps, func(i, j int) bool { return ps[i].FreqMHz < ps[j].FreqMHz })
	base := -1
	for i, p := range ps {
		if p.TimeSec <= 0 || p.EnergyJ <= 0 || math.IsNaN(p.TimeSec) || math.IsNaN(p.EnergyJ) {
			return nil, fmt.Errorf("metrics: invalid point at %d MHz", p.FreqMHz)
		}
		if i > 0 && ps[i].FreqMHz == ps[i-1].FreqMHz {
			return nil, fmt.Errorf("metrics: duplicate frequency %d MHz", p.FreqMHz)
		}
		if p.FreqMHz == baselineFreq {
			base = i
		}
	}
	if base < 0 {
		return nil, fmt.Errorf("metrics: baseline frequency %d MHz not in sweep", baselineFreq)
	}
	return &Sweep{Points: ps, Baseline: base}, nil
}

// BaselinePoint returns the default-configuration point.
func (s *Sweep) BaselinePoint() Point { return s.Points[s.Baseline] }

// CharPoint is a normalised characterisation point as plotted in
// Figs. 2, 7 and 8: speedup (x-axis) and per-task normalised energy
// (y-axis) relative to the default configuration.
type CharPoint struct {
	FreqMHz    int
	Speedup    float64 // t_default / t
	NormEnergy float64 // e / e_default
}

// Characterize normalises the sweep against its baseline.
func (s *Sweep) Characterize() []CharPoint {
	base := s.BaselinePoint()
	out := make([]CharPoint, len(s.Points))
	for i, p := range s.Points {
		out[i] = CharPoint{
			FreqMHz:    p.FreqMHz,
			Speedup:    base.TimeSec / p.TimeSec,
			NormEnergy: p.EnergyJ / base.EnergyJ,
		}
	}
	return out
}

// dominates reports whether a dominates b (no worse in both objectives,
// strictly better in at least one; minimise time and energy).
func dominates(a, b Point) bool {
	return a.TimeSec <= b.TimeSec && a.EnergyJ <= b.EnergyJ &&
		(a.TimeSec < b.TimeSec || a.EnergyJ < b.EnergyJ)
}

// ParetoFront returns the non-dominated subset of the sweep, sorted by
// ascending time (the red line in the paper's characterisation plots).
func (s *Sweep) ParetoFront() []Point {
	ps := make([]Point, len(s.Points))
	copy(ps, s.Points)
	// Sort by time, tie-break on energy: a point is on the front iff its
	// energy is strictly below every earlier point's best energy.
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].TimeSec != ps[j].TimeSec {
			return ps[i].TimeSec < ps[j].TimeSec
		}
		return ps[i].EnergyJ < ps[j].EnergyJ
	})
	var front []Point
	bestE := math.Inf(1)
	for _, p := range ps {
		if p.EnergyJ < bestE {
			front = append(front, p)
			bestE = p.EnergyJ
		}
	}
	return front
}

// Select applies the target definition of §5 to the sweep and returns
// the chosen configuration.
func (s *Sweep) Select(t Target) (Point, error) {
	if err := t.Validate(); err != nil {
		return Point{}, err
	}
	switch t.Kind {
	case KindMaxPerf:
		return s.argmin(func(p Point) float64 { return p.TimeSec }), nil
	case KindMinEnergy:
		return s.argmin(Point.energy), nil
	case KindMinEDP:
		return s.argmin(Point.EDP), nil
	case KindMinED2P:
		return s.argmin(Point.ED2P), nil
	case KindES:
		return s.selectES(t.X), nil
	case KindPL:
		return s.selectPL(t.X), nil
	}
	return Point{}, fmt.Errorf("metrics: unreachable target kind")
}

func (p Point) energy() float64 { return p.EnergyJ }

func (s *Sweep) argmin(f func(Point) float64) Point {
	best := s.Points[0]
	bestV := f(best)
	for _, p := range s.Points[1:] {
		if v := f(p); v < bestV {
			best, bestV = p, v
		}
	}
	return best
}

// selectES implements ES_x (§5.2): on the interval between the default
// configuration's energy and the minimum achievable energy, the target
// energy is e_def - x% of the potential saving; among configurations at
// or below that energy, pick the best-performing one. When no savings
// are possible the default configuration is returned.
func (s *Sweep) selectES(x float64) Point {
	def := s.BaselinePoint()
	minE := s.argmin(Point.energy)
	if minE.EnergyJ >= def.EnergyJ {
		return def
	}
	targetE := def.EnergyJ - x/100*(def.EnergyJ-minE.EnergyJ)
	best := Point{TimeSec: math.Inf(1)}
	found := false
	for _, p := range s.Points {
		if p.EnergyJ <= targetE+1e-12*def.EnergyJ {
			if !found || p.TimeSec < best.TimeSec {
				best = p
				found = true
			}
		}
	}
	if !found {
		return minE
	}
	return best
}

// selectPL implements PL_x (§5.3): the potential performance loss is the
// slowdown from the default configuration to the minimum-energy one; the
// target time is t_def + x% of that interval; among configurations at or
// below the target time, pick the most energy-efficient one.
func (s *Sweep) selectPL(x float64) Point {
	def := s.BaselinePoint()
	minE := s.argmin(Point.energy)
	slow := minE.TimeSec
	if slow < def.TimeSec {
		slow = def.TimeSec
	}
	targetT := def.TimeSec + x/100*(slow-def.TimeSec)
	best := Point{EnergyJ: math.Inf(1)}
	found := false
	for _, p := range s.Points {
		if p.TimeSec <= targetT+1e-12*def.TimeSec {
			if !found || p.EnergyJ < best.EnergyJ {
				best = p
				found = true
			}
		}
	}
	if !found {
		return def
	}
	return best
}

// ObjectiveValue returns the scalar each target optimises, evaluated at
// one point — the quantity the paper's APE/MAPE/RMSE error analysis
// compares between the predicted-optimal and actual-optimal frequency
// (§8.3). For ES_x the objective is energy; for PL_x and MAX_PERF it is
// time; for the remaining targets it is the respective product.
func ObjectiveValue(t Target, p Point) float64 {
	switch t.Kind {
	case KindMaxPerf, KindPL:
		return p.TimeSec
	case KindMinEnergy, KindES:
		return p.EnergyJ
	case KindMinEDP:
		return p.EDP()
	case KindMinED2P:
		return p.ED2P()
	default:
		return math.NaN()
	}
}

// EnergySavingPct returns the energy saving of a configuration relative
// to the sweep's baseline, in percent: 100·(e_def − e)/e_def. The
// baseline itself saves exactly 0%; since energies are positive the
// saving is always strictly below 100%. Negative values mean the
// configuration costs more energy than the default.
func (s *Sweep) EnergySavingPct(p Point) float64 {
	def := s.BaselinePoint()
	return 100 * (def.EnergyJ - p.EnergyJ) / def.EnergyJ
}

// PerfLossPct returns the performance loss of a configuration relative
// to the sweep's baseline, in percent: 100·(t − t_def)/t_def, clamped
// at 0 — a configuration faster than the default loses nothing.
func (s *Sweep) PerfLossPct(p Point) float64 {
	def := s.BaselinePoint()
	if pl := 100 * (p.TimeSec - def.TimeSec) / def.TimeSec; pl > 0 {
		return pl
	}
	return 0
}

// PointAt returns the sweep point at the given frequency.
func (s *Sweep) PointAt(freqMHz int) (Point, bool) {
	i := sort.Search(len(s.Points), func(i int) bool { return s.Points[i].FreqMHz >= freqMHz })
	if i < len(s.Points) && s.Points[i].FreqMHz == freqMHz {
		return s.Points[i], true
	}
	return Point{}, false
}
