package metrics

import (
	"math"
	"math/rand"
	"testing"
)

// randomSweep builds a plausible randomized characterisation: ascending
// frequencies with monotonically decreasing time and an energy valley —
// plus multiplicative noise, so selection logic sees realistic,
// non-convex sweeps.
func randomSweep(rng *rand.Rand) *Sweep {
	n := 5 + rng.Intn(40)
	points := make([]Point, n)
	f := 500 + rng.Intn(200)
	valley := rng.Float64() // position of the min-energy frequency, 0..1
	for i := range points {
		x := float64(i) / float64(n-1)
		noise := func() float64 { return 1 + 0.2*(rng.Float64()-0.5) }
		// Time falls with frequency; energy is a parabola around the
		// valley.
		t := (2 - x) * noise()
		e := (1 + 2*(x-valley)*(x-valley)) * noise()
		points[i] = Point{FreqMHz: f, TimeSec: t, EnergyJ: e}
		f += 10 + rng.Intn(50)
	}
	// Any point may be the driver default.
	base := points[rng.Intn(n)].FreqMHz
	s, err := NewSweep(points, base)
	if err != nil {
		panic(err)
	}
	return s
}

// TestESPLInvariants checks the §5 metric invariants across randomized
// seeded sweeps: the baseline saves exactly 0% energy, performance loss
// is never negative, and no configuration saves 100% or more.
func TestESPLInvariants(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		s := randomSweep(rng)
		def := s.BaselinePoint()
		if got := s.EnergySavingPct(def); got != 0 {
			t.Fatalf("trial %d: baseline saving = %v, want exactly 0", trial, got)
		}
		if got := s.PerfLossPct(def); got != 0 {
			t.Fatalf("trial %d: baseline perf loss = %v, want 0", trial, got)
		}
		for _, p := range s.Points {
			if pl := s.PerfLossPct(p); pl < 0 || math.IsNaN(pl) {
				t.Fatalf("trial %d: PL(%d MHz) = %v, want non-negative", trial, p.FreqMHz, pl)
			}
			if es := s.EnergySavingPct(p); es >= 100 || math.IsNaN(es) {
				t.Fatalf("trial %d: ES(%d MHz) = %v, want < 100", trial, p.FreqMHz, es)
			}
		}
	}
}

// TestESSelectionAchievesRequestedSaving: the configuration ES_x picks
// must actually realise at least x% of the potential saving, and must be
// the fastest one that does.
func TestESSelectionAchievesRequestedSaving(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 300; trial++ {
		s := randomSweep(rng)
		def := s.BaselinePoint()
		minE := s.argmin(Point.energy)
		potential := def.EnergyJ - minE.EnergyJ
		x := 1 + 99*rng.Float64()
		got, err := s.Select(ES(x))
		if err != nil {
			t.Fatal(err)
		}
		if potential <= 0 {
			// No savings possible: ES_x degenerates to the default.
			if got != def {
				t.Fatalf("trial %d: no potential saving but ES_%g picked %+v", trial, x, got)
			}
			continue
		}
		wantE := def.EnergyJ - x/100*potential
		if got.EnergyJ > wantE+1e-9*def.EnergyJ {
			t.Fatalf("trial %d: ES_%g picked %v J, above target %v J", trial, x, got.EnergyJ, wantE)
		}
		// No eligible configuration is strictly faster.
		for _, p := range s.Points {
			if p.EnergyJ <= wantE+1e-12*def.EnergyJ && p.TimeSec < got.TimeSec {
				t.Fatalf("trial %d: ES_%g picked %+v but %+v is eligible and faster", trial, x, got, p)
			}
		}
	}
}

// TestPLSelectionRespectsLossBudget: PL_x never picks a configuration
// slower than the allowed loss interval, and picks the cheapest eligible
// one.
func TestPLSelectionRespectsLossBudget(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 300; trial++ {
		s := randomSweep(rng)
		def := s.BaselinePoint()
		minE := s.argmin(Point.energy)
		x := 1 + 99*rng.Float64()
		got, err := s.Select(PL(x))
		if err != nil {
			t.Fatal(err)
		}
		slow := math.Max(minE.TimeSec, def.TimeSec)
		targetT := def.TimeSec + x/100*(slow-def.TimeSec)
		if got.TimeSec > targetT+1e-9*def.TimeSec {
			t.Fatalf("trial %d: PL_%g picked %v s, above budget %v s", trial, x, got.TimeSec, targetT)
		}
		for _, p := range s.Points {
			if p.TimeSec <= targetT+1e-12*def.TimeSec && p.EnergyJ < got.EnergyJ {
				t.Fatalf("trial %d: PL_%g picked %+v but %+v is eligible and cheaper", trial, x, got, p)
			}
		}
	}
}

// TestSelectionsLieOnOrInsideTheSweep: every target selection returns a
// member of the sweep, and fixed targets return their true optima.
func TestSelectionsLieOnOrInsideTheSweep(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 100; trial++ {
		s := randomSweep(rng)
		for _, target := range StandardTargets {
			got, err := s.Select(target)
			if err != nil {
				t.Fatal(err)
			}
			if p, ok := s.PointAt(got.FreqMHz); !ok || p != got {
				t.Fatalf("trial %d: %s selected a point outside the sweep: %+v", trial, target, got)
			}
			for _, p := range s.Points {
				if ObjectiveValue(target, p) < ObjectiveValue(target, got) {
					switch target.Kind {
					case KindMaxPerf, KindMinEnergy, KindMinEDP, KindMinED2P:
						t.Fatalf("trial %d: %s picked %+v, but %+v scores better", trial, target, got, p)
					}
				}
			}
		}
	}
}
