package metrics_test

import (
	"fmt"

	"synergy/internal/metrics"
)

// ExampleSweep_Select shows target selection over a small DVFS sweep:
// EDP picks an interior point, ES_50 trades half the available savings.
func ExampleSweep_Select() {
	points := []metrics.Point{
		{FreqMHz: 600, TimeSec: 2.0, EnergyJ: 160},
		{FreqMHz: 800, TimeSec: 1.5, EnergyJ: 150},
		{FreqMHz: 1000, TimeSec: 1.2, EnergyJ: 156},
		{FreqMHz: 1200, TimeSec: 1.0, EnergyJ: 180}, // default
		{FreqMHz: 1400, TimeSec: 0.95, EnergyJ: 210},
	}
	sweep, err := metrics.NewSweep(points, 1200)
	if err != nil {
		panic(err)
	}
	for _, target := range []metrics.Target{metrics.MinEDP, metrics.ES(50), metrics.PL(25)} {
		p, err := sweep.Select(target)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s -> %d MHz\n", target, p.FreqMHz)
	}
	// Output:
	// MIN_EDP -> 1200 MHz
	// ES_50 -> 1000 MHz
	// PL_25 -> 1200 MHz
}

// ExampleParseTarget parses the paper's target notation.
func ExampleParseTarget() {
	t, err := metrics.ParseTarget("ES_25")
	if err != nil {
		panic(err)
	}
	fmt.Println(t.Kind == metrics.KindES, t.X)
	// Output: true 25
}

// ExampleSweep_ParetoFront extracts the non-dominated configurations.
func ExampleSweep_ParetoFront() {
	points := []metrics.Point{
		{FreqMHz: 600, TimeSec: 2.0, EnergyJ: 100},
		{FreqMHz: 800, TimeSec: 1.5, EnergyJ: 120},
		{FreqMHz: 1000, TimeSec: 1.4, EnergyJ: 119}, // dominates the 800 MHz point
		{FreqMHz: 1200, TimeSec: 1.0, EnergyJ: 180},
	}
	sweep, err := metrics.NewSweep(points, 1200)
	if err != nil {
		panic(err)
	}
	for _, p := range sweep.ParetoFront() {
		fmt.Println(p.FreqMHz)
	}
	// Output:
	// 1200
	// 1000
	// 600
}
