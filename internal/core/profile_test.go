package core

import (
	"strings"
	"testing"
)

// TestSortStatsDeterministicOnTies: kernels with identical energy used
// to surface in map-iteration order, so repeated Profile() calls (and
// golden diffs over the rendered table) flapped. Ties now break by name.
func TestSortStatsDeterministicOnTies(t *testing.T) {
	mk := func(name string, energy float64) KernelStats {
		return KernelStats{Name: name, Launches: 1, TimeSec: 1, EnergyJ: energy,
			FreqLaunches: map[int]int{1000: 1}}
	}
	// Two permutations of the same stats, with an energy tie in the middle.
	a := []KernelStats{mk("zeta", 2), mk("alpha", 2), mk("mid", 5), mk("low", 1)}
	b := []KernelStats{mk("low", 1), mk("mid", 5), mk("alpha", 2), mk("zeta", 2)}
	sortStats(a)
	sortStats(b)
	wantOrder := []string{"mid", "alpha", "zeta", "low"}
	for i, want := range wantOrder {
		if a[i].Name != want {
			t.Fatalf("permutation A: position %d = %s, want %s", i, a[i].Name, want)
		}
		if b[i].Name != want {
			t.Fatalf("permutation B: position %d = %s, want %s", i, b[i].Name, want)
		}
	}
}

// TestRenderProfileFrequenciesSorted: the per-kernel frequency launch
// counts come from a map; the rendering must list them in ascending
// frequency order regardless of insertion order.
func TestRenderProfileFrequenciesSorted(t *testing.T) {
	stats := []KernelStats{{
		Name: "k", Launches: 3, TimeSec: 1, EnergyJ: 1,
		FreqLaunches: map[int]int{1380: 1, 600: 1, 990: 1},
	}}
	out := RenderProfile(stats)
	if !strings.Contains(out, "600:1 990:1 1380:1") {
		t.Fatalf("frequencies not in ascending order:\n%s", out)
	}
	// Determinism across repeated renders.
	for i := 0; i < 10; i++ {
		if got := RenderProfile(stats); got != out {
			t.Fatalf("render %d differs from first render", i)
		}
	}
}

// TestProfileStableAcrossCalls: repeated Profile() on the same queue
// returns the same ordering (the copied stats, re-sorted, must agree).
func TestProfileStableAcrossCalls(t *testing.T) {
	q, _ := newV100Queue(t)
	q.EnableProfiling()
	submitStream(t, q, 1<<12)
	first := q.Profile()
	for i := 0; i < 5; i++ {
		again := q.Profile()
		if len(again) != len(first) {
			t.Fatalf("call %d: %d stats, want %d", i, len(again), len(first))
		}
		for j := range again {
			if again[j].Name != first[j].Name {
				t.Fatalf("call %d: order changed at %d: %s vs %s", i, j, again[j].Name, first[j].Name)
			}
		}
	}
}
