package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"synergy/internal/fault"
	"synergy/internal/hw"
	"synergy/internal/nvml"
	"synergy/internal/power"
	"synergy/internal/resilience"
	"synergy/internal/sycl"
)

// flakyV100Queue builds a privileged queue whose NVML clock-set site
// fails with the given rules.
func flakyV100Queue(t *testing.T, rules ...fault.Rule) (*Queue, *sycl.Device) {
	t.Helper()
	dev := sycl.NewDevice(hw.V100())
	dev.HW().SetLabel("gpu0")
	if len(rules) > 0 {
		dev.HW().SetFaultInjector(fault.New(1, rules...))
	}
	pm, err := power.NewPrivilegedManager(dev.HW())
	if err != nil {
		t.Fatal(err)
	}
	return NewQueue(dev, pm), dev
}

// TestQueueDegradesWhileBreakerOpen: once the device's breaker opens,
// frequency-scaled submissions run at current clocks and record a
// DegradationEvent carrying the breaker diagnosis, without touching the
// vendor layer again.
func TestQueueDegradesWhileBreakerOpen(t *testing.T) {
	t.Parallel()
	q, dev := flakyV100Queue(t, fault.Rule{
		Site: nvml.SiteSetAppClocks, Err: nvml.ErrTimeout, // sticky flaky driver
	})
	reg := resilience.NewRegistry(resilience.Config{
		FailureThreshold: 1, CooldownSec: 1e9, HalfOpenSuccesses: 1,
	})
	q.SetBreaker(reg.Breaker("gpu0"))
	low := dev.HW().Spec().MinCoreMHz()
	k := streamKernel(t)
	args := streamArgs(64)

	// First submission exhausts the retry budget and trips the breaker:
	// the submission itself fails (terminal transient error).
	ev, err := q.SubmitWithFreq(0, low, func(h *sycl.Handler) { h.ParallelFor(64, k, args) })
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.Wait(); !errors.Is(err, nvml.ErrTimeout) {
		t.Fatalf("first submission error = %v, want wrapped ErrTimeout", err)
	}
	if got := reg.Breaker("gpu0").Current(); got != resilience.Open {
		t.Fatalf("breaker %v after budget exhaustion, want open", got)
	}
	vendorCalls := dev.HW().FaultInjector().CallCount(nvml.SiteSetAppClocks + ":gpu0")

	// Subsequent submissions degrade: kernel runs, clocks untouched,
	// degradation recorded, vendor layer not consulted.
	ev, err = q.SubmitWithFreq(0, low, func(h *sycl.Handler) { h.ParallelFor(64, k, args) })
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.Wait(); err != nil {
		t.Fatalf("degraded submission failed: %v", err)
	}
	degr := q.Degradations()
	if len(degr) != 1 {
		t.Fatalf("degradations = %d, want 1", len(degr))
	}
	d := degr[0]
	if d.Kernel != "stream" || d.WantMHz != low {
		t.Errorf("degradation %+v, want kernel=stream want=%d MHz", d, low)
	}
	if !strings.Contains(d.Reason, "circuit breaker open") {
		t.Errorf("degradation reason %q does not name the breaker", d.Reason)
	}
	if got := dev.HW().FaultInjector().CallCount(nvml.SiteSetAppClocks + ":gpu0"); got != vendorCalls {
		t.Errorf("open breaker reached the vendor layer (%d -> %d calls)", vendorCalls, got)
	}
	if mhz := dev.HW().AppClockMHz(); mhz == low {
		t.Errorf("clock pinned to %d MHz despite open breaker", mhz)
	}
	if n := dev.HW().KernelCount(); n != 1 {
		t.Errorf("kernels executed = %d, want 1 (degraded kernel still runs; the failed submission's does not)", n)
	}
}

// TestSubmitContextPreCanceled: context-aware submissions fail fast
// without enqueueing when already canceled, and WaitContext honours
// cancellation while the queue drains normally afterwards.
func TestSubmitContextPreCanceled(t *testing.T) {
	t.Parallel()
	q, _ := newV100Queue(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	k := streamKernel(t)
	args := streamArgs(16)
	if _, err := q.SubmitContext(ctx, func(h *sycl.Handler) { h.ParallelFor(16, k, args) }); !errors.Is(err, context.Canceled) {
		t.Fatalf("SubmitContext = %v, want context.Canceled", err)
	}
	if _, err := q.SubmitWithFreqContext(ctx, 0, 877, func(h *sycl.Handler) { h.ParallelFor(16, k, args) }); !errors.Is(err, context.Canceled) {
		t.Fatalf("SubmitWithFreqContext = %v, want context.Canceled", err)
	}
	if err := q.WaitContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("WaitContext = %v, want context.Canceled", err)
	}
	// An uncanceled context drains an empty queue immediately.
	if err := q.WaitContext(context.Background()); err != nil {
		t.Fatalf("WaitContext on live context: %v", err)
	}
}
