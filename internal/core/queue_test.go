package core

import (
	"errors"
	"math"
	"strings"
	"testing"

	"synergy/internal/hw"
	"synergy/internal/kernelir"
	"synergy/internal/metrics"
	"synergy/internal/power"
	"synergy/internal/sycl"
)

func newV100Queue(t *testing.T) (*Queue, *sycl.Device) {
	t.Helper()
	dev := sycl.NewDevice(hw.V100())
	pm, err := power.NewPrivilegedManager(dev.HW())
	if err != nil {
		t.Fatal(err)
	}
	return NewQueue(dev, pm), dev
}

// streamKernel is a memory-heavy kernel whose launches are long enough
// for sampled profiling to converge.
func streamKernel(t testing.TB) *kernelir.Kernel {
	t.Helper()
	b := kernelir.NewBuilder("stream")
	in := b.BufferF32("in", kernelir.Read)
	out := b.BufferF32("out", kernelir.Write)
	gid := b.GlobalID()
	acc := b.ConstF(0)
	b.Repeat(16, func() {
		v := b.LoadF(in, gid)
		b.MoveF(acc, b.AddF(acc, v))
	})
	b.StoreF(out, gid, acc)
	return b.MustBuild()
}

func streamArgs(n int) kernelir.Args {
	in := make([]float32, n)
	out := make([]float32, n)
	for i := range in {
		in[i] = 1
	}
	return kernelir.Args{F32: map[string][]float32{"in": in, "out": out}}
}

func submitStream(t *testing.T, q *Queue, n int) *sycl.Event {
	t.Helper()
	k := streamKernel(t)
	args := streamArgs(n)
	ev, err := q.Submit(func(h *sycl.Handler) { h.ParallelFor(n, k, args) })
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

// longStreamKernel reads enough global memory per item that a large
// launch runs for hundreds of virtual milliseconds.
func longStreamKernel(t testing.TB) *kernelir.Kernel {
	t.Helper()
	b := kernelir.NewBuilder("stream_long")
	in := b.BufferF32("in", kernelir.Read)
	out := b.BufferF32("out", kernelir.Write)
	gid := b.GlobalID()
	acc := b.ConstF(0)
	b.Repeat(671, func() {
		v := b.LoadF(in, gid)
		b.MoveF(acc, b.AddF(acc, v))
	})
	b.StoreF(out, gid, acc)
	return b.MustBuild()
}

func TestListing1ProfilingFlow(t *testing.T) {
	// synergy::queue q; submit; wait; kernel_energy_consumption;
	// device_energy_consumption. A large launch gives a long virtual
	// kernel; the functional cap keeps host interpretation cheap.
	q, dev := newV100Queue(t)
	q.SetFunctionalCap(4096)
	n := 1 << 26
	k := longStreamKernel(t)
	args := streamArgs(4096)
	ev, err := q.Submit(func(h *sycl.Handler) { h.ParallelFor(n, k, args) })
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.Wait(); err != nil {
		t.Fatal(err)
	}
	kernelE, err := q.KernelEnergyConsumption(ev)
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := ev.Profiling()
	if rec.End-rec.Start < 0.05 {
		t.Fatalf("test kernel too short (%vs) for sampled profiling", rec.End-rec.Start)
	}
	if rel := math.Abs(kernelE-rec.EnergyJ) / rec.EnergyJ; rel > 0.10 {
		t.Fatalf("sampled kernel energy off by %.1f%% on a long kernel", 100*rel)
	}
	dev.HW().AdvanceIdle(0.1)
	deviceE := q.DeviceEnergyConsumption()
	if deviceE <= kernelE {
		t.Fatalf("device energy %v should exceed kernel energy %v (idle included)", deviceE, kernelE)
	}
}

func TestListing2QueueWithFrequencies(t *testing.T) {
	dev := sycl.NewDevice(hw.V100())
	pm, err := power.NewPrivilegedManager(dev.HW())
	if err != nil {
		t.Fatal(err)
	}
	low := dev.HW().Spec().CoreFreqsMHz[5]
	q, err := NewQueueWithFreq(dev, pm, 877, low)
	if err != nil {
		t.Fatal(err)
	}
	k := streamKernel(t)
	args := streamArgs(1 << 16)
	ev, err := q.Submit(func(h *sycl.Handler) { h.ParallelFor(1<<16, k, args) })
	if err != nil {
		t.Fatal(err)
	}
	rec, err := ev.Profiling()
	if err != nil {
		t.Fatal(err)
	}
	if rec.CoreMHz != low {
		t.Fatalf("kernel ran at %d MHz, want pinned %d", rec.CoreMHz, low)
	}
}

func TestNewQueueWithFreqValidation(t *testing.T) {
	dev := sycl.NewDevice(hw.V100())
	pm, err := power.NewPrivilegedManager(dev.HW())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewQueueWithFreq(dev, pm, 1215, 1312); err == nil {
		t.Error("wrong memory frequency accepted")
	}
	if _, err := NewQueueWithFreq(dev, pm, 877, 1311); err == nil {
		t.Error("unsupported core frequency accepted")
	}
	if _, err := NewQueueWithFreq(dev, pm, 0, dev.HW().Spec().DefaultCoreMHz); err != nil {
		t.Errorf("mem=0 (keep) rejected: %v", err)
	}
}

func TestListing4PerKernelFrequencyOverride(t *testing.T) {
	q, dev := newV100Queue(t)
	spec := dev.HW().Spec()
	k := streamKernel(t)

	args1 := streamArgs(1 << 14)
	ev1, err := q.SubmitWithFreq(877, spec.MinCoreMHz(), func(h *sycl.Handler) { h.ParallelFor(1<<14, k, args1) })
	if err != nil {
		t.Fatal(err)
	}
	args2 := streamArgs(1 << 14)
	ev2, err := q.SubmitWithFreq(0, spec.MaxCoreMHz(), func(h *sycl.Handler) { h.ParallelFor(1<<14, k, args2) })
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := ev1.Profiling()
	r2, _ := ev2.Profiling()
	if r1.CoreMHz != spec.MinCoreMHz() || r2.CoreMHz != spec.MaxCoreMHz() {
		t.Fatalf("per-kernel frequencies: %d then %d, want %d then %d",
			r1.CoreMHz, r2.CoreMHz, spec.MinCoreMHz(), spec.MaxCoreMHz())
	}
	if dev.HW().ClockSetCount() != 2 {
		t.Fatalf("clock sets = %d, want 2", dev.HW().ClockSetCount())
	}
}

func TestSubmitWithFreqValidation(t *testing.T) {
	q, _ := newV100Queue(t)
	k := streamKernel(t)
	args := streamArgs(16)
	if _, err := q.SubmitWithFreq(123, 1312, func(h *sycl.Handler) { h.ParallelFor(16, k, args) }); err == nil {
		t.Error("bad memory frequency accepted")
	}
	if _, err := q.SubmitWithFreq(877, 7, func(h *sycl.Handler) { h.ParallelFor(16, k, args) }); err == nil {
		t.Error("bad core frequency accepted")
	}
}

// stubAdvisor returns a fixed frequency and records its inputs.
type stubAdvisor struct {
	freq   int
	kernel string
	target metrics.Target
	err    error
}

func (s *stubAdvisor) AdviseCoreFreq(k *kernelir.Kernel, items int, target metrics.Target) (int, error) {
	s.kernel = k.Name
	s.target = target
	return s.freq, s.err
}

func TestListing3TargetAnnotatedSubmission(t *testing.T) {
	q, dev := newV100Queue(t)
	adv := &stubAdvisor{freq: dev.HW().Spec().CoreFreqsMHz[42]}
	q.SetAdvisor(adv)
	k := streamKernel(t)
	args := streamArgs(1 << 14)
	ev, err := q.SubmitWithTarget(metrics.MinEDP, func(h *sycl.Handler) { h.ParallelFor(1<<14, k, args) })
	if err != nil {
		t.Fatal(err)
	}
	rec, err := ev.Profiling()
	if err != nil {
		t.Fatal(err)
	}
	if rec.CoreMHz != adv.freq {
		t.Fatalf("kernel ran at %d MHz, want advised %d", rec.CoreMHz, adv.freq)
	}
	if adv.kernel != "stream" || adv.target != metrics.MinEDP {
		t.Fatalf("advisor saw kernel %q target %s", adv.kernel, adv.target)
	}
}

func TestSubmitWithTargetWithoutAdvisor(t *testing.T) {
	q, _ := newV100Queue(t)
	k := streamKernel(t)
	args := streamArgs(16)
	_, err := q.SubmitWithTarget(metrics.MinEDP, func(h *sycl.Handler) { h.ParallelFor(16, k, args) })
	if err == nil || !strings.Contains(err.Error(), "advisor") {
		t.Fatalf("expected missing-advisor error, got %v", err)
	}
}

func TestSubmitWithTargetAdvisorErrors(t *testing.T) {
	q, _ := newV100Queue(t)
	k := streamKernel(t)
	args := streamArgs(16)
	cg := func(h *sycl.Handler) { h.ParallelFor(16, k, args) }

	q.SetAdvisor(&stubAdvisor{err: errors.New("model unavailable")})
	if _, err := q.SubmitWithTarget(metrics.MinEDP, cg); err == nil {
		t.Error("advisor error not propagated")
	}
	q.SetAdvisor(&stubAdvisor{freq: 4242})
	if _, err := q.SubmitWithTarget(metrics.MinEDP, cg); err == nil {
		t.Error("unsupported advised frequency accepted")
	}
	q.SetAdvisor(&stubAdvisor{freq: 1312})
	if _, err := q.SubmitWithTarget(metrics.Target{Kind: metrics.KindES, X: -5}, cg); err == nil {
		t.Error("invalid target accepted")
	}
}

func TestRedundantFrequencySetsAreSkipped(t *testing.T) {
	// Submitting many kernels at the same frequency must set the clock
	// once (the §4.4 overhead mitigation).
	dev := sycl.NewDevice(hw.V100())
	pm, err := power.NewPrivilegedManager(dev.HW())
	if err != nil {
		t.Fatal(err)
	}
	low := dev.HW().Spec().CoreFreqsMHz[3]
	q, err := NewQueueWithFreq(dev, pm, 877, low)
	if err != nil {
		t.Fatal(err)
	}
	k := streamKernel(t)
	for i := 0; i < 10; i++ {
		args := streamArgs(1 << 12)
		if _, err := q.Submit(func(h *sycl.Handler) { h.ParallelFor(1<<12, k, args) }); err != nil {
			t.Fatal(err)
		}
	}
	q.Wait()
	if n := dev.HW().ClockSetCount(); n != 1 {
		t.Fatalf("clock sets = %d, want 1 (redundant sets skipped)", n)
	}
}

func TestUnprivilegedFrequencyScalingDegradesGracefully(t *testing.T) {
	// Without the SLURM plugin's privilege window, frequency scaling is
	// denied — the motivation for §7. The runtime degrades gracefully:
	// the kernel still runs (at current clocks) and the forfeited saving
	// is recorded as a degradation event.
	dev := sycl.NewDevice(hw.V100())
	pm, err := power.NewManager(dev.HW(), "alice", false)
	if err != nil {
		t.Fatal(err)
	}
	q := NewQueue(dev, pm)
	k := streamKernel(t)
	args := streamArgs(16)
	want := dev.HW().Spec().MinCoreMHz()
	ev, err := q.SubmitWithFreq(877, want,
		func(h *sycl.Handler) { h.ParallelFor(16, k, args) })
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.Wait(); err != nil {
		t.Fatalf("degraded submission failed: %v", err)
	}
	if got := dev.HW().AppClockMHz(); got != dev.HW().Spec().DefaultCoreMHz {
		t.Fatalf("clocks at %d MHz, want driver default %d MHz",
			got, dev.HW().Spec().DefaultCoreMHz)
	}
	degr := q.Degradations()
	if len(degr) != 1 {
		t.Fatalf("degradations = %d, want 1", len(degr))
	}
	if degr[0].WantMHz != want || degr[0].Kernel != k.Name {
		t.Fatalf("degradation event %+v, want kernel %q at %d MHz", degr[0], k.Name, want)
	}
}

func TestShortKernelProfilingInaccuracy(t *testing.T) {
	// §4.4: kernels shorter than the sampling interval profile poorly.
	q, _ := newV100Queue(t)
	ev := submitStream(t, q, 1<<10)
	if err := ev.Wait(); err != nil {
		t.Fatal(err)
	}
	rec, _ := ev.Profiling()
	if rec.End-rec.Start > 0.015 {
		t.Skip("kernel not short enough on this configuration")
	}
	got, err := q.KernelEnergyConsumption(ev)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(got-rec.EnergyJ) / rec.EnergyJ; rel < 0.5 {
		t.Fatalf("short-kernel profiling unexpectedly accurate (%.1f%%)", 100*rel)
	}
}

func TestResetFrequency(t *testing.T) {
	q, dev := newV100Queue(t)
	k := streamKernel(t)
	args := streamArgs(1 << 12)
	if _, err := q.SubmitWithFreq(877, dev.HW().Spec().MinCoreMHz(),
		func(h *sycl.Handler) { h.ParallelFor(1<<12, k, args) }); err != nil {
		t.Fatal(err)
	}
	if err := q.ResetFrequency(); err != nil {
		t.Fatal(err)
	}
	if got := dev.HW().AppClockMHz(); got != dev.HW().Spec().DefaultCoreMHz {
		t.Fatalf("clock after reset %d, want default %d", got, dev.HW().Spec().DefaultCoreMHz)
	}
}

func TestMixedQueuesListing4Scenario(t *testing.T) {
	// Two queues on one device with different configurations.
	dev := sycl.NewDevice(hw.V100())
	pm, err := power.NewPrivilegedManager(dev.HW())
	if err != nil {
		t.Fatal(err)
	}
	spec := dev.HW().Spec()
	lowQ, err := NewQueueWithFreq(dev, pm, 877, spec.CoreFreqsMHz[10])
	if err != nil {
		t.Fatal(err)
	}
	defQ := NewQueue(dev, pm)
	k := streamKernel(t)

	a1 := streamArgs(1 << 12)
	ev1, err := lowQ.Submit(func(h *sycl.Handler) { h.ParallelFor(1<<12, k, a1) })
	if err != nil {
		t.Fatal(err)
	}
	if err := ev1.Wait(); err != nil {
		t.Fatal(err)
	}
	a2 := streamArgs(1 << 12)
	ev2, err := defQ.SubmitWithFreq(877, spec.MaxCoreMHz(), func(h *sycl.Handler) { h.ParallelFor(1<<12, k, a2) })
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := ev1.Profiling()
	r2, _ := ev2.Profiling()
	if r1.CoreMHz != spec.CoreFreqsMHz[10] || r2.CoreMHz != spec.MaxCoreMHz() {
		t.Fatalf("mixed queues ran at %d and %d MHz", r1.CoreMHz, r2.CoreMHz)
	}
}

func TestProfilerAggregatesPerKernel(t *testing.T) {
	q, _ := newV100Queue(t)
	q.EnableProfiling()
	k := streamKernel(t)
	spec := q.Device().HW().Spec()
	for i := 0; i < 3; i++ {
		args := streamArgs(1 << 12)
		if _, err := q.Submit(func(h *sycl.Handler) { h.ParallelFor(1<<12, k, args) }); err != nil {
			t.Fatal(err)
		}
	}
	args := streamArgs(1 << 12)
	if _, err := q.SubmitWithFreq(0, spec.MinCoreMHz(),
		func(h *sycl.Handler) { h.ParallelFor(1<<12, k, args) }); err != nil {
		t.Fatal(err)
	}
	stats := q.Profile()
	if len(stats) != 1 {
		t.Fatalf("%d kernels profiled, want 1", len(stats))
	}
	s := stats[0]
	if s.Name != "stream" || s.Launches != 4 {
		t.Fatalf("bad stats: %+v", s)
	}
	if s.EnergyJ <= 0 || s.TimeSec <= 0 || s.AvgPowerW() <= 0 {
		t.Fatalf("non-positive aggregates: %+v", s)
	}
	if len(s.FreqLaunches) != 2 {
		t.Fatalf("freq histogram %v, want 2 distinct frequencies", s.FreqLaunches)
	}
	if s.FreqLaunches[spec.MinCoreMHz()] != 1 {
		t.Fatalf("min-frequency launch not recorded: %v", s.FreqLaunches)
	}
	if out := RenderProfile(stats); out == "" {
		t.Fatal("empty profile render")
	}
}

func TestProfilerDisabledByDefault(t *testing.T) {
	q, _ := newV100Queue(t)
	k := streamKernel(t)
	args := streamArgs(256)
	if _, err := q.Submit(func(h *sycl.Handler) { h.ParallelFor(256, k, args) }); err != nil {
		t.Fatal(err)
	}
	if stats := q.Profile(); len(stats) != 0 {
		t.Fatalf("profiler collected %d kernels while disabled", len(stats))
	}
}
