package core

import (
	"errors"
	"testing"

	"synergy/internal/hw"
	"synergy/internal/power"
	"synergy/internal/sycl"
)

// flakyManager injects vendor-library failures: every nth SetCoreFreq
// call fails (drivers under load do this; the runtime must surface it
// through the event rather than wedge the queue).
type flakyManager struct {
	power.Manager
	n     int
	calls int
}

var errFlaky = errors.New("nvml: GPU lost (simulated transient)")

func (f *flakyManager) SetCoreFreq(mhz int) error {
	f.calls++
	if f.n > 0 && f.calls%f.n == 0 {
		return errFlaky
	}
	return f.Manager.SetCoreFreq(mhz)
}

func TestFlakyClockSetsSurfaceThroughEvents(t *testing.T) {
	dev := sycl.NewDevice(hw.V100())
	base, err := power.NewPrivilegedManager(dev.HW())
	if err != nil {
		t.Fatal(err)
	}
	flaky := &flakyManager{Manager: base, n: 3}
	q := NewQueue(dev, flaky)
	k := streamKernel(t)
	spec := dev.HW().Spec()

	var failures, successes int
	for i := 0; i < 12; i++ {
		args := streamArgs(256)
		// Alternate frequencies so every submission performs a set.
		f := spec.CoreFreqsMHz[10+(i%2)*50]
		ev, err := q.SubmitWithFreq(0, f, func(h *sycl.Handler) {
			h.ParallelFor(256, k, args)
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := ev.Wait(); err != nil {
			if !errors.Is(err, errFlaky) {
				t.Fatalf("unexpected error type: %v", err)
			}
			failures++
		} else {
			successes++
		}
	}
	if failures == 0 {
		t.Fatal("injected failures never surfaced")
	}
	if successes == 0 {
		t.Fatal("queue wedged after a transient failure")
	}
	// The queue remains usable afterwards.
	args := streamArgs(256)
	ev, err := q.Submit(func(h *sycl.Handler) { h.ParallelFor(256, k, args) })
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.Wait(); err != nil {
		t.Fatalf("queue unusable after transient failures: %v", err)
	}
}

func TestFailedPreActionDoesNotRunKernel(t *testing.T) {
	dev := sycl.NewDevice(hw.V100())
	base, err := power.NewPrivilegedManager(dev.HW())
	if err != nil {
		t.Fatal(err)
	}
	flaky := &flakyManager{Manager: base, n: 1} // every set fails
	q := NewQueue(dev, flaky)
	k := streamKernel(t)
	args := streamArgs(256)
	before := dev.HW().KernelCount()
	ev, err := q.SubmitWithFreq(0, dev.HW().Spec().MinCoreMHz(), func(h *sycl.Handler) {
		h.ParallelFor(256, k, args)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.Wait(); err == nil {
		t.Fatal("failed clock set did not fail the submission")
	}
	if got := dev.HW().KernelCount(); got != before {
		t.Fatalf("kernel executed despite failed pre-action (%d -> %d)", before, got)
	}
}
