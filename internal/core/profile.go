package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"synergy/internal/hw"
	"synergy/internal/sycl"
)

// KernelStats aggregates the fine-grained profile of one kernel across
// its launches on a queue.
type KernelStats struct {
	Name     string
	Launches int
	TimeSec  float64
	EnergyJ  float64
	// FreqLaunches counts launches per core frequency (shows what the
	// per-kernel plans actually did).
	FreqLaunches map[int]int
}

// AvgPowerW is the launch-weighted average power.
func (s KernelStats) AvgPowerW() float64 {
	if s.TimeSec == 0 {
		return 0
	}
	return s.EnergyJ / s.TimeSec
}

// profiler collects completed kernel records.
type profiler struct {
	mu    sync.Mutex
	on    bool
	stats map[string]*KernelStats
	wg    sync.WaitGroup
}

func (p *profiler) add(rec hw.KernelRecord) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stats == nil {
		p.stats = map[string]*KernelStats{}
	}
	s, ok := p.stats[rec.Name]
	if !ok {
		s = &KernelStats{Name: rec.Name, FreqLaunches: map[int]int{}}
		p.stats[rec.Name] = s
	}
	s.Launches++
	s.TimeSec += rec.End - rec.Start
	s.EnergyJ += rec.EnergyJ
	s.FreqLaunches[rec.CoreMHz]++
}

// EnableProfiling turns on per-kernel statistics collection for all
// subsequent submissions.
func (q *Queue) EnableProfiling() {
	q.prof.mu.Lock()
	q.prof.on = true
	q.prof.mu.Unlock()
}

// observe registers a completed event with the profiler (no-op unless
// profiling is enabled).
func (q *Queue) observe(ev *sycl.Event) {
	q.prof.mu.Lock()
	on := q.prof.on
	q.prof.mu.Unlock()
	if !on {
		return
	}
	q.prof.wg.Add(1)
	go func() {
		defer q.prof.wg.Done()
		rec, err := ev.Profiling()
		if err == nil {
			q.prof.add(rec)
		}
	}()
}

// Profile waits for all submitted work and returns the per-kernel
// statistics, sorted by descending energy.
func (q *Queue) Profile() []KernelStats {
	q.q.Wait()
	q.prof.wg.Wait()
	q.prof.mu.Lock()
	defer q.prof.mu.Unlock()
	out := make([]KernelStats, 0, len(q.prof.stats))
	for _, s := range q.prof.stats {
		cp := *s
		cp.FreqLaunches = make(map[int]int, len(s.FreqLaunches))
		for f, n := range s.FreqLaunches {
			cp.FreqLaunches[f] = n
		}
		out = append(out, cp)
	}
	sortStats(out)
	return out
}

// sortStats orders kernel statistics by descending energy, breaking
// ties by name: the source map has no order of its own, and without the
// tie-break equal-energy kernels would surface in map order — breaking
// golden tests and diffs over the rendered profile.
func sortStats(out []KernelStats) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].EnergyJ != out[j].EnergyJ {
			return out[i].EnergyJ > out[j].EnergyJ
		}
		return out[i].Name < out[j].Name
	})
}

// RenderProfile formats kernel statistics as a text table.
func RenderProfile(stats []KernelStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %8s %12s %12s %10s %s\n",
		"kernel", "launches", "time(s)", "energy(J)", "avg(W)", "frequencies")
	for _, s := range stats {
		var freqs []int
		for f := range s.FreqLaunches {
			freqs = append(freqs, f)
		}
		sort.Ints(freqs)
		var fs []string
		for _, f := range freqs {
			fs = append(fs, fmt.Sprintf("%d:%d", f, s.FreqLaunches[f]))
		}
		fmt.Fprintf(&b, "%-20s %8d %12.5f %12.4f %10.1f %s\n",
			s.Name, s.Launches, s.TimeSec, s.EnergyJ, s.AvgPowerW(), strings.Join(fs, " "))
	}
	return b.String()
}
