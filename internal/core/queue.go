// Package core implements the SYnergy programming interface (§4): the
// synergy queue that extends the SYCL queue with energy capabilities —
// per-kernel and per-device energy profiling, frequency scaling at queue
// construction, per-submission frequency overrides, and target-annotated
// kernel submission (MIN_EDP, MIN_ED2P, ES_x, PL_x) backed by the
// trained energy models.
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"synergy/internal/governor"
	"synergy/internal/hw"
	"synergy/internal/kernelir"
	"synergy/internal/metrics"
	"synergy/internal/power"
	"synergy/internal/resilience"
	"synergy/internal/sycl"
	"synergy/internal/telemetry"
)

// DegradationEvent records a submission that ran at current clocks
// because the vendor layer denied the frequency change (no privilege
// window, §7): the kernel still executes correctly — only the energy
// saving is forfeited.
type DegradationEvent struct {
	// Kernel is the kernel name ("" when the command group has none).
	Kernel string
	// WantMHz is the core frequency the runtime tried to pin.
	WantMHz int
	// Reason is the vendor error text.
	Reason string
	// TimeSec is the device virtual time when the denial was observed.
	TimeSec float64
}

// FrequencyAdvisor predicts the core frequency that optimises a target
// for a kernel — the prediction phase of §6.2. internal/model provides
// the machine-learning implementation; tests may plug in stubs.
type FrequencyAdvisor interface {
	AdviseCoreFreq(k *kernelir.Kernel, items int, target metrics.Target) (int, error)
}

// Queue is the synergy::queue equivalent: a SYCL queue plus energy
// capabilities, built on the vendor-neutral power.Manager.
type Queue struct {
	q  *sycl.Queue
	pm power.Manager

	mu         sync.Mutex
	pinned     int // core MHz pinned at construction (0 = none)
	advisor    FrequencyAdvisor
	retry      governor.RetryPolicy
	breaker    *resilience.Breaker
	spanParent *telemetry.SpanHandle
	degr       []DegradationEvent
	prof       profiler
}

// NewQueue builds a conventional queue: kernels run at the device's
// current (default) clocks.
func NewQueue(dev *sycl.Device, pm power.Manager) *Queue {
	return &Queue{q: sycl.NewQueue(dev), pm: pm}
}

// NewQueueWithFreq builds a queue with a fixed frequency configuration
// (Listing 2): every kernel submitted without an override runs at the
// given memory and core frequency. Since HBM devices cannot scale the
// memory clock, memMHz must match the device's fixed memory frequency
// (or be 0 to keep it).
func NewQueueWithFreq(dev *sycl.Device, pm power.Manager, memMHz, coreMHz int) (*Queue, error) {
	if memMHz != 0 && memMHz != pm.MemFreqMHz() {
		return nil, fmt.Errorf("core: memory frequency %d MHz not available (device runs HBM at %d MHz)",
			memMHz, pm.MemFreqMHz())
	}
	if !supported(pm, coreMHz) {
		return nil, fmt.Errorf("core: core frequency %d MHz not supported by %s", coreMHz, pm.DeviceName())
	}
	return &Queue{q: sycl.NewQueue(dev), pm: pm, pinned: coreMHz}, nil
}

func supported(pm power.Manager, coreMHz int) bool {
	for _, f := range pm.SupportedCoreFreqs() {
		if f == coreMHz {
			return true
		}
	}
	return false
}

// SetAdvisor installs the model-backed frequency advisor used by
// target-annotated submissions.
func (q *Queue) SetAdvisor(a FrequencyAdvisor) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.advisor = a
}

// SetRetryPolicy overrides the retry/backoff policy used for pre-kernel
// clock changes (governor.DefaultRetryPolicy when unset).
func (q *Queue) SetRetryPolicy(pol governor.RetryPolicy) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.retry = pol
}

// SetBreaker attaches this device's circuit breaker from the health
// registry: pre-kernel clock changes consult it before spending the
// retry budget, and while the device is unhealthy submissions degrade
// to current clocks with a recorded DegradationEvent. A nil breaker
// (the default) disables the guard.
func (q *Queue) SetBreaker(br *resilience.Breaker) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.breaker = br
}

// SetSpanParent links this queue's kernel spans under a parent span
// (the rank span of the job → rank → kernel hierarchy). Telemetry
// itself is device state: the queue reports into the registry attached
// to its hw.Device (hw.Device.SetTelemetry), if any.
func (q *Queue) SetSpanParent(h *telemetry.SpanHandle) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.spanParent = h
}

// Degradations returns the submissions that ran at current clocks
// because frequency control was denied, in submission order.
func (q *Queue) Degradations() []DegradationEvent {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]DegradationEvent, len(q.degr))
	copy(out, q.degr)
	return out
}

// Device returns the underlying SYCL device.
func (q *Queue) Device() *sycl.Device { return q.q.Device() }

// PowerManager returns the vendor binding in use.
func (q *Queue) PowerManager() power.Manager { return q.pm }

// Submit enqueues a command group at the queue's frequency configuration
// (the pinned frequency, or the device default when unpinned).
func (q *Queue) Submit(cg sycl.CommandGroup) (*sycl.Event, error) {
	q.mu.Lock()
	pinned := q.pinned
	q.mu.Unlock()
	return q.submitAt(pinned, cg)
}

// SubmitWithFreq enqueues a command group with a per-kernel frequency
// override (Listing 4). The frequency is set on the device just before
// the kernel starts.
func (q *Queue) SubmitWithFreq(memMHz, coreMHz int, cg sycl.CommandGroup) (*sycl.Event, error) {
	if memMHz != 0 && memMHz != q.pm.MemFreqMHz() {
		return nil, fmt.Errorf("core: memory frequency %d MHz not available", memMHz)
	}
	if !supported(q.pm, coreMHz) {
		return nil, fmt.Errorf("core: core frequency %d MHz not supported by %s", coreMHz, q.pm.DeviceName())
	}
	return q.submitAt(coreMHz, cg)
}

// SubmitWithTarget enqueues a command group annotated with an energy
// target (Listing 3): the advisor predicts the optimal frequency for
// this kernel and target, and the kernel runs there.
func (q *Queue) SubmitWithTarget(target metrics.Target, cg sycl.CommandGroup) (*sycl.Event, error) {
	if err := target.Validate(); err != nil {
		return nil, err
	}
	q.mu.Lock()
	advisor := q.advisor
	q.mu.Unlock()
	if advisor == nil {
		return nil, errors.New("core: no frequency advisor installed (train models first, see internal/model)")
	}
	k, items, err := sycl.Probe(cg)
	if err != nil {
		return nil, err
	}
	freq, err := advisor.AdviseCoreFreq(k, items, target)
	if err != nil {
		return nil, fmt.Errorf("core: advising %s for kernel %q: %w", target, k.Name, err)
	}
	if !supported(q.pm, freq) {
		return nil, fmt.Errorf("core: advisor returned unsupported frequency %d MHz", freq)
	}
	return q.submitAt(freq, cg)
}

// submitAt submits with an optional pre-kernel clock change (coreMHz 0
// means no change): the set happens on the device thread in submission
// order, costing the vendor library's clock-set overhead (§4.4).
// Transient clock-set failures are retried with bounded backoff; a
// permission denial degrades gracefully — the kernel runs at current
// clocks and the denial is recorded.
//
// When the device carries a telemetry registry the submission is fully
// instrumented: per-kernel counters and virtual-time histograms
// (synergy_kernels_total, synergy_kernel_seconds, synergy_kernel_energy_joules,
// synergy_queue_wait_seconds, synergy_degradations_total, plus the
// governor's clock-set families), and one kernel span per submission on
// the device-label track with queue-wait / clock-set / execute child
// spans. Both hooks run on the device thread, so span order inherits
// the queue's serialisation and identical seeds yield identical tracks.
func (q *Queue) submitAt(coreMHz int, cg sycl.CommandGroup) (*sycl.Event, error) {
	q.mu.Lock()
	pol := q.retry
	br := q.breaker
	parent := q.spanParent
	q.mu.Unlock()
	if pol.MaxAttempts == 0 {
		pol = governor.DefaultRetryPolicy()
	}
	hwDev := q.q.Device().HW()
	tel := hwDev.Telemetry()
	lbl := hwDev.Label()
	if lbl == "" {
		lbl = q.pm.DeviceName()
	}
	enqT := q.pm.DeviceNow()
	var preT0, preT1 float64
	pre := func() error {
		preT0 = q.pm.DeviceNow()
		preT1 = preT0
		if coreMHz == 0 || q.pm.CurrentCoreFreq() == coreMHz {
			return nil
		}
		res := governor.ApplyFrequencyMetered(q.pm, coreMHz, pol, br, tel, lbl)
		preT1 = q.pm.DeviceNow()
		if res.Applied {
			return nil
		}
		if res.Degraded {
			name := ""
			if k, _, perr := sycl.Probe(cg); perr == nil {
				name = k.Name
			}
			tel.Counter("synergy_degradations_total", "device", lbl).Inc()
			q.mu.Lock()
			q.degr = append(q.degr, DegradationEvent{
				Kernel:  name,
				WantMHz: coreMHz,
				Reason:  res.Err.Error(),
				TimeSec: q.pm.DeviceNow(),
			})
			q.mu.Unlock()
			return nil // run at current clocks; energy saving forfeited
		}
		return res.Err
	}
	var post func(rec hw.KernelRecord, err error)
	if tel != nil {
		post = func(rec hw.KernelRecord, err error) {
			if !(rec.End > rec.Start) {
				return // the kernel never occupied the device
			}
			tel.Counter("synergy_kernels_total", "device", lbl).Inc()
			tel.Histogram("synergy_kernel_seconds", telemetry.TimeBuckets, "device", lbl).
				ObserveAt(rec.End-rec.Start, rec.End)
			tel.Histogram("synergy_kernel_energy_joules", telemetry.EnergyBuckets, "device", lbl).
				ObserveAt(rec.EnergyJ, rec.End)
			tel.Histogram("synergy_queue_wait_seconds", telemetry.TimeBuckets, "device", lbl).
				ObserveAt(preT0-enqT, rec.End)
			ks := tel.StartSpan(lbl, rec.Name, "kernel", enqT, parent)
			if preT0 > enqT {
				tel.RecordSpan(lbl, "queue-wait", "queue-wait", enqT, preT0, ks)
			}
			if preT1 > preT0 {
				tel.RecordSpan(lbl, "clock-set", "clock-set", preT0, preT1, ks)
			}
			tel.RecordSpan(lbl, "execute", "execute", rec.Start, rec.End, ks)
			ks.End(rec.End)
		}
	}
	ev, err := q.q.SubmitObserved(pre, post, cg)
	if err == nil {
		q.observe(ev)
	}
	return ev, err
}

// Wait blocks until all submitted work completes.
func (q *Queue) Wait() { q.q.Wait() }

// WaitContext blocks until all submitted work completes or the context
// is canceled.
func (q *Queue) WaitContext(ctx context.Context) error { return q.q.WaitContext(ctx) }

// SubmitContext is Submit with cancellation: a canceled context fails
// fast before enqueueing (already-enqueued work always completes — the
// simulated device never abandons a running kernel).
func (q *Queue) SubmitContext(ctx context.Context, cg sycl.CommandGroup) (*sycl.Event, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return q.Submit(cg)
}

// SubmitWithFreqContext is SubmitWithFreq with cancellation.
func (q *Queue) SubmitWithFreqContext(ctx context.Context, memMHz, coreMHz int, cg sycl.CommandGroup) (*sycl.Event, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return q.SubmitWithFreq(memMHz, coreMHz, cg)
}

// SubmitWithTargetContext is SubmitWithTarget with cancellation.
func (q *Queue) SubmitWithTargetContext(ctx context.Context, target metrics.Target, cg sycl.CommandGroup) (*sycl.Event, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return q.SubmitWithTarget(target, cg)
}

// SetFunctionalCap bounds per-launch interpreted work-items (see
// sycl.Queue.SetFunctionalCap); the energy/time model is unaffected.
func (q *Queue) SetFunctionalCap(n int) { q.q.SetFunctionalCap(n) }

// KernelEnergyConsumption returns the fine-grained energy of one kernel
// (§4.2): the energy an asynchronous polling thread accumulates between
// the kernel's start and end events. Accuracy is limited by the vendor
// sampling period — kernels much shorter than ~15 ms (NVML) profile
// poorly, as the paper notes in §4.4.
func (q *Queue) KernelEnergyConsumption(ev *sycl.Event) (float64, error) {
	rec, err := ev.Profiling()
	if err != nil {
		return 0, err
	}
	return q.pm.SampledEnergy(rec.Start, rec.End), nil
}

// DeviceEnergyConsumption returns the coarse-grained energy (§4.2): the
// whole-device energy, idle periods included, accumulated in the window
// that opened when the queue was constructed.
func (q *Queue) DeviceEnergyConsumption() float64 {
	return q.pm.SampledEnergy(q.q.ConstructedAt(), q.pm.DeviceNow())
}

// ResetFrequency restores the driver-default clocks (used by tools and
// by the scheduler epilogue path when running single-node).
func (q *Queue) ResetFrequency() error {
	q.q.Wait()
	return q.pm.ResetCoreFreq()
}
