// Package resilience provides the cluster resilience primitives the
// long-running service layer is built on: per-device circuit breakers
// with virtual-time cool-down and a process-wide health registry.
//
// A breaker guards a failure-prone dependency (a vendor management
// library on one device, a scheduler endpoint). Repeated failures trip
// it open; while open the caller skips the dependency entirely — no
// retry budget, no backoff — and degrades (the SYnergy queue runs the
// kernel at current clocks and records the forfeited saving). After a
// cool-down in *virtual* device time the breaker half-opens and lets
// probe calls through; enough consecutive probe successes close it
// again.
//
// # Determinism contract
//
// Breakers carry no wall-clock state: every transition is driven by an
// explicit virtual timestamp supplied by the caller (the device
// timeline). In this codebase each breaker is only ever exercised from
// one goroutine at a time (the device thread of its queue), so two runs
// of the same seeded workload produce byte-identical transition logs —
// the chaos harness folds them into the fault trace it compares across
// replays.
package resilience

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"synergy/internal/telemetry"
)

// ErrOpen reports a call short-circuited because the circuit breaker
// guarding the dependency is open.
var ErrOpen = errors.New("resilience: circuit breaker open")

// State is the breaker state machine position.
type State int

const (
	// Closed: the dependency is healthy; calls pass through.
	Closed State = iota
	// Open: the dependency is failing; calls are short-circuited until
	// the cool-down elapses.
	Open
	// HalfOpen: the cool-down elapsed; probe calls pass through and
	// decide whether the breaker closes or re-opens.
	HalfOpen
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Config parameterises one breaker.
type Config struct {
	// FailureThreshold is the number of consecutive failures that trips
	// a closed breaker open (>= 1).
	FailureThreshold int
	// CooldownSec is the virtual time an open breaker waits before
	// half-opening.
	CooldownSec float64
	// HalfOpenSuccesses is the number of consecutive successful probes
	// that close a half-open breaker (>= 1).
	HalfOpenSuccesses int
}

// DefaultConfig mirrors a production device-health daemon: three
// strikes open the breaker, the cool-down is long relative to a kernel
// but short relative to a job, and two clean probes restore service.
func DefaultConfig() Config {
	return Config{
		FailureThreshold:  3,
		CooldownSec:       0.5,
		HalfOpenSuccesses: 2,
	}
}

func (c Config) sanitized() Config {
	if c.FailureThreshold < 1 {
		c.FailureThreshold = 1
	}
	if c.HalfOpenSuccesses < 1 {
		c.HalfOpenSuccesses = 1
	}
	if c.CooldownSec < 0 {
		c.CooldownSec = 0
	}
	return c
}

// Transition is one recorded breaker state change. Transitions are
// timestamped in virtual time and sequence-numbered per breaker, so a
// sorted transition log is a deterministic function of the workload.
type Transition struct {
	// Breaker is the breaker (device) name.
	Breaker string
	// Seq is the 1-based transition index within this breaker.
	Seq int
	// From, To are the states.
	From, To State
	// AtSec is the virtual time of the transition.
	AtSec float64
	// Reason is a short human-readable cause.
	Reason string
}

// String renders the transition for trace comparison (stable format).
func (t Transition) String() string {
	return fmt.Sprintf("breaker %s #%d %s->%s at=%.9fs reason=%q",
		t.Breaker, t.Seq, t.From, t.To, t.AtSec, t.Reason)
}

// Breaker is one circuit breaker. All methods take the current virtual
// time explicitly; the breaker holds no clock of its own.
type Breaker struct {
	name string
	cfg  Config

	mu          sync.Mutex
	state       State
	fails       int // consecutive failures while closed
	successes   int // consecutive probe successes while half-open
	openedAt    float64
	transitions []Transition
	tel         *telemetry.Registry
}

// NewBreaker creates a closed breaker.
func NewBreaker(name string, cfg Config) *Breaker {
	return &Breaker{name: name, cfg: cfg.sanitized()}
}

// Name returns the breaker name.
func (b *Breaker) Name() string { return b.name }

// SetTelemetry attaches a telemetry registry: every state change
// increments synergy_breaker_transitions_total{breaker,to}, so the
// counter family always equals the transition log length per state —
// the cross-validation invariant. Nil detaches.
func (b *Breaker) SetTelemetry(r *telemetry.Registry) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tel = r
}

// transitionLocked records a state change (caller holds b.mu).
func (b *Breaker) transitionLocked(to State, nowSec float64, reason string) {
	b.transitions = append(b.transitions, Transition{
		Breaker: b.name,
		Seq:     len(b.transitions) + 1,
		From:    b.state,
		To:      to,
		AtSec:   nowSec,
		Reason:  reason,
	})
	b.state = to
	b.tel.Counter("synergy_breaker_transitions_total", "breaker", b.name, "to", to.String()).Inc()
}

// Allow reports whether a call may proceed at virtual time nowSec. An
// open breaker whose cool-down has elapsed half-opens as a side effect
// (the caller's call is the probe).
func (b *Breaker) Allow(nowSec float64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed, HalfOpen:
		return true
	default: // Open
		if nowSec >= b.openedAt+b.cfg.CooldownSec {
			b.successes = 0
			b.transitionLocked(HalfOpen, nowSec, "cool-down elapsed")
			return true
		}
		return false
	}
}

// RecordSuccess reports a successful call at virtual time nowSec.
func (b *Breaker) RecordSuccess(nowSec float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		b.fails = 0
	case HalfOpen:
		b.successes++
		if b.successes >= b.cfg.HalfOpenSuccesses {
			b.fails = 0
			b.transitionLocked(Closed, nowSec,
				fmt.Sprintf("%d successful probes", b.successes))
		}
	}
}

// RecordFailure reports a failed call at virtual time nowSec.
func (b *Breaker) RecordFailure(nowSec float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		b.fails++
		if b.fails >= b.cfg.FailureThreshold {
			b.openedAt = nowSec
			b.transitionLocked(Open, nowSec,
				fmt.Sprintf("%d consecutive failures", b.fails))
		}
	case HalfOpen:
		b.openedAt = nowSec
		b.transitionLocked(Open, nowSec, "probe failed")
	}
}

// Current returns the breaker's state as of its last recorded event
// (an open breaker past its cool-down still reports Open until a call
// probes it through Allow).
func (b *Breaker) Current() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Transitions returns a copy of the transition log in occurrence order.
func (b *Breaker) Transitions() []Transition {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Transition, len(b.transitions))
	copy(out, b.transitions)
	return out
}

// Registry is a process-wide device-health view: one breaker per named
// device, created on first use with a shared configuration.
type Registry struct {
	cfg Config

	mu  sync.Mutex
	m   map[string]*Breaker
	tel *telemetry.Registry
}

// NewRegistry creates a registry whose breakers use cfg.
func NewRegistry(cfg Config) *Registry {
	return &Registry{cfg: cfg.sanitized(), m: map[string]*Breaker{}}
}

// SetTelemetry attaches a telemetry registry to every breaker the
// registry holds now or creates later (see Breaker.SetTelemetry).
func (g *Registry) SetTelemetry(r *telemetry.Registry) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.tel = r
	for _, b := range g.m {
		b.SetTelemetry(r)
	}
}

// Breaker returns the named breaker, creating it closed on first use.
func (g *Registry) Breaker(name string) *Breaker {
	g.mu.Lock()
	defer g.mu.Unlock()
	b, ok := g.m[name]
	if !ok {
		b = NewBreaker(name, g.cfg)
		b.SetTelemetry(g.tel)
		g.m[name] = b
	}
	return b
}

// Names returns the registered breaker names, sorted.
func (g *Registry) Names() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]string, 0, len(g.m))
	for name := range g.m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Unhealthy returns the names of breakers not currently closed, sorted.
func (g *Registry) Unhealthy() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	var out []string
	for name, b := range g.m {
		if b.Current() != Closed {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Transitions returns every breaker's transitions merged and sorted by
// (breaker, sequence) — a stable order under goroutine interleaving, so
// identical seeded runs yield logs that compare equal element-wise.
func (g *Registry) Transitions() []Transition {
	g.mu.Lock()
	breakers := make([]*Breaker, 0, len(g.m))
	for _, b := range g.m {
		breakers = append(breakers, b)
	}
	g.mu.Unlock()
	var out []Transition
	for _, b := range breakers {
		out = append(out, b.Transitions()...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Breaker != out[j].Breaker {
			return out[i].Breaker < out[j].Breaker
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}
