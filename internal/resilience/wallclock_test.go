package resilience

import "testing"

// TestWallBreakerScriptedClock drives the adapter through a full
// closed -> open -> half-open -> closed cycle on a scripted clock and
// checks the transitions carry the scripted timestamps.
func TestWallBreakerScriptedClock(t *testing.T) {
	now := 0.0
	w := NewWallBreaker("sweep", Config{FailureThreshold: 2, CooldownSec: 1.0, HalfOpenSuccesses: 1}, func() float64 { return now })

	if !w.Allow() {
		t.Fatal("fresh breaker denied a call")
	}
	w.RecordFailure()
	now = 0.1
	w.RecordFailure()
	if w.Current() != Open {
		t.Fatalf("state %v after threshold failures, want Open", w.Current())
	}
	now = 0.5
	if w.Allow() {
		t.Fatal("open breaker admitted a call inside the cool-down")
	}
	now = 1.2
	if !w.Allow() {
		t.Fatal("open breaker denied the probe after the cool-down")
	}
	w.RecordSuccess()
	if w.Current() != Closed {
		t.Fatalf("state %v after successful probe, want Closed", w.Current())
	}

	trs := w.Inner().Transitions()
	if len(trs) != 3 {
		t.Fatalf("%d transitions, want 3", len(trs))
	}
	wantAt := []float64{0.1, 1.2, 1.2}
	for i, tr := range trs {
		if tr.AtSec != wantAt[i] {
			t.Errorf("transition %d at %.3f, want %.3f (%s)", i, tr.AtSec, wantAt[i], tr)
		}
	}
}

// TestWallBreakerDefaultClock sanity-checks the monotonic default.
func TestWallBreakerDefaultClock(t *testing.T) {
	w := NewWallBreaker("x", DefaultConfig(), nil)
	if !w.Allow() {
		t.Fatal("fresh breaker denied")
	}
	w.RecordSuccess()
	if w.Current() != Closed {
		t.Fatal("not closed")
	}
}
