package resilience

import "time"

// Clock supplies the current time in seconds for a wall-clock breaker.
// It exists so long-running services can run their breakers on real
// time while tests and the serve-chaos harness substitute a scripted
// clock and keep breaker transitions byte-for-byte reproducible.
type Clock func() float64

// WallBreaker adapts the virtual-time Breaker to callers that live on
// the wall clock (the serve daemon guarding its ground-truth sweep
// backend). The underlying state machine, transition log and telemetry
// wiring are exactly the cluster breaker's; only the time source
// changes — every Allow/RecordSuccess/RecordFailure stamps the
// transition with the adapter's clock instead of a device timeline.
type WallBreaker struct {
	b   *Breaker
	now Clock
}

// NewWallBreaker wraps a fresh breaker in a wall-clock adapter. A nil
// clock uses seconds elapsed since the adapter was built (a monotonic
// base, immune to wall-clock steps).
func NewWallBreaker(name string, cfg Config, now Clock) *WallBreaker {
	if now == nil {
		start := time.Now()
		now = func() float64 { return time.Since(start).Seconds() }
	}
	return &WallBreaker{b: NewBreaker(name, cfg), now: now}
}

// Inner returns the wrapped breaker (for transition-log inspection and
// telemetry attachment).
func (w *WallBreaker) Inner() *Breaker { return w.b }

// Allow reports whether a call may proceed now; an open breaker past
// its cool-down half-opens and admits the call as a probe.
func (w *WallBreaker) Allow() bool { return w.b.Allow(w.now()) }

// RecordSuccess reports a successful call.
func (w *WallBreaker) RecordSuccess() { w.b.RecordSuccess(w.now()) }

// RecordFailure reports a failed call.
func (w *WallBreaker) RecordFailure() { w.b.RecordFailure(w.now()) }

// Current returns the breaker's state as of its last recorded event.
func (w *WallBreaker) Current() State { return w.b.Current() }
