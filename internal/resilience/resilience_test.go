package resilience

import (
	"strings"
	"testing"
)

func TestBreakerTripsAtThreshold(t *testing.T) {
	t.Parallel()
	b := NewBreaker("gpu0", Config{FailureThreshold: 3, CooldownSec: 1, HalfOpenSuccesses: 2})
	for i := 0; i < 2; i++ {
		b.RecordFailure(float64(i))
		if b.Current() != Closed {
			t.Fatalf("breaker opened after %d failures", i+1)
		}
	}
	if !b.Allow(2) {
		t.Fatal("closed breaker denied a call")
	}
	b.RecordFailure(2)
	if b.Current() != Open {
		t.Fatalf("breaker %v after threshold failures, want open", b.Current())
	}
	if b.Allow(2.5) {
		t.Fatal("open breaker allowed a call inside the cool-down")
	}
}

func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	t.Parallel()
	b := NewBreaker("gpu0", Config{FailureThreshold: 2, CooldownSec: 1, HalfOpenSuccesses: 1})
	b.RecordFailure(0)
	b.RecordSuccess(1) // streak broken
	b.RecordFailure(2)
	if b.Current() != Closed {
		t.Fatal("non-consecutive failures tripped the breaker")
	}
	b.RecordFailure(3)
	if b.Current() != Open {
		t.Fatal("consecutive failures did not trip the breaker")
	}
}

func TestBreakerHalfOpenAndRecovery(t *testing.T) {
	t.Parallel()
	b := NewBreaker("gpu0", Config{FailureThreshold: 1, CooldownSec: 2, HalfOpenSuccesses: 2})
	b.RecordFailure(10)
	if b.Allow(11.9) {
		t.Fatal("cool-down not enforced")
	}
	if !b.Allow(12) {
		t.Fatal("elapsed cool-down did not half-open the breaker")
	}
	if b.Current() != HalfOpen {
		t.Fatalf("state %v, want half-open", b.Current())
	}
	b.RecordSuccess(12.1)
	if b.Current() != HalfOpen {
		t.Fatal("breaker closed before enough probe successes")
	}
	b.RecordSuccess(12.2)
	if b.Current() != Closed {
		t.Fatal("breaker did not close after probe successes")
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	t.Parallel()
	b := NewBreaker("gpu0", Config{FailureThreshold: 1, CooldownSec: 1, HalfOpenSuccesses: 1})
	b.RecordFailure(0)
	if !b.Allow(1) {
		t.Fatal("probe not allowed after cool-down")
	}
	b.RecordFailure(1.5)
	if b.Current() != Open {
		t.Fatal("failed probe did not reopen the breaker")
	}
	// The new cool-down starts at the reopen time.
	if b.Allow(2.4) {
		t.Fatal("reopened breaker ignored its fresh cool-down")
	}
	if !b.Allow(2.6) {
		t.Fatal("reopened breaker never recovers")
	}
}

func TestTransitionsAreRecordedInOrder(t *testing.T) {
	t.Parallel()
	b := NewBreaker("gpu1", Config{FailureThreshold: 1, CooldownSec: 1, HalfOpenSuccesses: 1})
	b.RecordFailure(5)
	b.Allow(6)
	b.RecordSuccess(6.5)
	tr := b.Transitions()
	if len(tr) != 3 {
		t.Fatalf("transitions = %d, want 3", len(tr))
	}
	wantTo := []State{Open, HalfOpen, Closed}
	for i, w := range wantTo {
		if tr[i].To != w || tr[i].Seq != i+1 || tr[i].Breaker != "gpu1" {
			t.Errorf("transition %d = %+v, want to=%v seq=%d", i, tr[i], w, i+1)
		}
	}
	if !strings.Contains(tr[0].String(), "gpu1 #1 closed->open at=5.000000000s") {
		t.Errorf("unstable transition rendering: %s", tr[0])
	}
}

func TestRegistrySharedBreakersAndMergedLog(t *testing.T) {
	t.Parallel()
	reg := NewRegistry(Config{FailureThreshold: 1, CooldownSec: 1, HalfOpenSuccesses: 1})
	if reg.Breaker("a") != reg.Breaker("a") {
		t.Fatal("registry returned distinct breakers for one name")
	}
	reg.Breaker("b").RecordFailure(2)
	reg.Breaker("a").RecordFailure(1)
	if got := reg.Unhealthy(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("unhealthy = %v, want [a b]", got)
	}
	if got := reg.Names(); len(got) != 2 || got[0] != "a" {
		t.Fatalf("names = %v, want [a b]", got)
	}
	tr := reg.Transitions()
	if len(tr) != 2 || tr[0].Breaker != "a" || tr[1].Breaker != "b" {
		t.Fatalf("merged transitions = %v, want sorted by breaker", tr)
	}
}

func TestConfigSanitized(t *testing.T) {
	t.Parallel()
	b := NewBreaker("x", Config{FailureThreshold: 0, CooldownSec: -5, HalfOpenSuccesses: 0})
	b.RecordFailure(1)
	if b.Current() != Open {
		t.Fatal("threshold floor of 1 not applied")
	}
	if !b.Allow(1) {
		t.Fatal("negative cool-down not clamped to zero")
	}
	b.RecordSuccess(1)
	if b.Current() != Closed {
		t.Fatal("half-open successes floor of 1 not applied")
	}
}
