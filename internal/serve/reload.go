package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"os"
	"sync"

	"synergy/internal/features"
	"synergy/internal/metrics"
	"synergy/internal/model"
)

// activeBundle is one fully validated, servable model bundle together
// with its content fingerprint and its pool of prediction sessions.
// The Server holds exactly one in an atomic pointer; advise captures
// the pointer once per request and works exclusively from that capture,
// so a response is always computed from a single bundle even while a
// reload swaps the pointer mid-flight. The fingerprint echoed on every
// response is the proof.
type activeBundle struct {
	m    *model.Models
	fp   string
	pool sync.Pool
}

// newActiveBundle validates the bundle (model.Models.Check via
// NewPredictor) and computes its fingerprint. A bundle that fails
// either never becomes active — the daemon cannot serve from an unfit
// or half-loaded bundle by construction.
func newActiveBundle(m *model.Models) (*activeBundle, error) {
	if m == nil {
		return nil, fmt.Errorf("serve: nil model bundle")
	}
	if _, err := m.NewPredictor(); err != nil {
		return nil, err
	}
	fp, err := m.Fingerprint()
	if err != nil {
		return nil, err
	}
	ab := &activeBundle{m: m, fp: fp}
	ab.pool.New = func() any {
		p, err := m.NewPredictor()
		if err != nil {
			// Unreachable: the bundle was validated before it became
			// active, and Check is a pure function of the bundle.
			panic(err)
		}
		return p
	}
	return ab, nil
}

// goldenProbes are the synthetic feature vectors of the reload
// self-test: a compute-bound, a memory-bound and a mixed kernel, the
// three regimes the §6.2 frequency search distinguishes. Any bundle
// fit for serving must produce finite positive predictions for all of
// them.
func goldenProbes() []features.Vector {
	return []features.Vector{
		{FloatAdd: 64, FloatMul: 48, IntAdd: 16, GlAccess: 4},
		{GlAccess: 96, IntAdd: 8, LocAccess: 16},
		{IntAdd: 24, IntMul: 12, FloatAdd: 24, FloatMul: 12, SF: 4, GlAccess: 12, LocAccess: 8},
	}
}

// goldenTargets are the energy targets the self-test exercises.
var goldenTargets = []string{"MAX_PERF", "MIN_ENERGY", "MIN_EDP"}

// plausibleRatio bounds how far a candidate prediction may sit from the
// live bundle's before the reload is rejected as implausible. Wide on
// purpose: retrained bundles legitimately move predictions, but a
// bundle predicting 10^5× the live cost for the same probe is broken,
// not retrained.
const plausibleRatio = 1e4

// selfTest gates a reload: the candidate must serve the same device,
// advise every golden probe under every golden target with finite
// positive time/energy and an in-table frequency, and land within
// plausibleRatio of the live bundle's predictions.
func selfTest(live, cand *model.Models) error {
	if cand.Spec.Name != live.Spec.Name {
		return fmt.Errorf("serve: candidate bundle serves device %q, live bundle serves %q",
			cand.Spec.Name, live.Spec.Name)
	}
	lp, err := live.NewPredictor()
	if err != nil {
		return fmt.Errorf("serve: live bundle unfit during self-test: %w", err)
	}
	cp, err := cand.NewPredictor()
	if err != nil {
		return fmt.Errorf("serve: candidate bundle unfit: %w", err)
	}
	finite := func(x float64) bool { return x > 0 && !math.IsInf(x, 0) && !math.IsNaN(x) }
	for _, tname := range goldenTargets {
		target, err := metrics.ParseTarget(tname)
		if err != nil {
			return err
		}
		for pi, v := range goldenProbes() {
			ca, err := cp.Advise(v, target)
			if err != nil {
				return fmt.Errorf("serve: candidate bundle failed golden probe %d under %s: %w", pi, tname, err)
			}
			if !finite(ca.TimeNs) || !finite(ca.EnergyNanoJ) {
				return fmt.Errorf("serve: candidate bundle predicts non-finite cost (t=%g ns, e=%g nJ) for golden probe %d under %s",
					ca.TimeNs, ca.EnergyNanoJ, pi, tname)
			}
			inTable := false
			for _, f := range cand.Spec.CoreFreqsMHz {
				if f == ca.FreqMHz {
					inTable = true
					break
				}
			}
			if !inTable {
				return fmt.Errorf("serve: candidate bundle advises off-table frequency %d MHz for golden probe %d under %s",
					ca.FreqMHz, pi, tname)
			}
			la, err := lp.Advise(v, target)
			if err != nil {
				// The live bundle cannot judge this probe; the candidate
				// already proved itself finite and in-table.
				continue
			}
			for _, pair := range [][2]float64{{ca.TimeNs, la.TimeNs}, {ca.EnergyNanoJ, la.EnergyNanoJ}} {
				if pair[1] <= 0 {
					continue
				}
				r := pair[0] / pair[1]
				if r < 1/plausibleRatio || r > plausibleRatio {
					return fmt.Errorf("serve: candidate bundle prediction implausible (%.3gx the live bundle) for golden probe %d under %s",
						r, pi, tname)
				}
			}
		}
	}
	return nil
}

// Reload validates the candidate bundle and, if it passes, atomically
// swaps it in as the serving bundle. On any failure the live bundle
// keeps serving untouched — there is no intermediate state. Reloads
// are serialized; concurrent requests keep being answered from
// whichever bundle is active when they capture it.
func (s *Server) Reload(cand *model.Models) error {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	nb, err := newActiveBundle(cand)
	if err != nil {
		return s.rejectReload(err)
	}
	live := s.bundle.Load()
	if err := selfTest(live.m, cand); err != nil {
		return s.rejectReload(err)
	}
	s.bundle.Store(nb)
	s.reg.Counter("serve_reloads_total", "result", "ok").Inc()
	return nil
}

// ReloadFromPath loads a bundle file (SaveModels format) and Reloads
// it. This is the SIGHUP path in cmd/synergy-serve.
func (s *Server) ReloadFromPath(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return s.rejectReload(fmt.Errorf("serve: opening bundle: %w", err))
	}
	defer f.Close()
	cand, err := model.LoadModels(f)
	if err != nil {
		return s.rejectReload(err)
	}
	return s.Reload(cand)
}

func (s *Server) rejectReload(err error) error {
	s.reg.Counter("serve_reloads_total", "result", "rejected").Inc()
	return err
}

// ReloadRequest is the /v1/reload body: exactly one of Path (a bundle
// file on the daemon's filesystem) or Bundle (the bundle JSON inline).
type ReloadRequest struct {
	Path   string          `json:"path,omitempty"`
	Bundle json.RawMessage `json:"bundle,omitempty"`
}

func (s *Server) handleReload(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	var req ReloadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return decodeError("reload", err)
	}
	if (req.Path == "") == (len(req.Bundle) == 0) {
		return badRequest(`serve: reload needs exactly one of "path" or "bundle"`)
	}
	if err := s.faultPoint(ctx, SiteReload); err != nil {
		return err
	}
	var err error
	if req.Path != "" {
		err = s.ReloadFromPath(req.Path)
	} else {
		var cand *model.Models
		if cand, err = model.LoadModels(bytes.NewReader(req.Bundle)); err != nil {
			err = s.rejectReload(err)
		} else {
			err = s.Reload(cand)
		}
	}
	if err != nil {
		return &httpError{code: http.StatusUnprocessableEntity, msg: err.Error()}
	}
	b := s.bundle.Load()
	writeJSON(w, http.StatusOK, map[string]string{
		"status": "ok",
		"device": b.m.Spec.Name,
		"algo":   b.m.Algo,
		"bundle": b.fp,
	})
	return nil
}
