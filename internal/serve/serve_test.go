package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"synergy/internal/benchsuite"
	"synergy/internal/features"
	"synergy/internal/hw"
	"synergy/internal/metrics"
	"synergy/internal/microbench"
	"synergy/internal/model"
	"synergy/internal/telemetry"
)

var (
	bundleOnce sync.Once
	bundleM    *model.Models
	bundleErr  error
)

// testBundle trains one shared V100 forest bundle for the whole test
// binary (the training sweeps are memoized in the sweep engine).
func testBundle(t testing.TB) *model.Models {
	t.Helper()
	bundleOnce.Do(func() {
		ks, err := microbench.Kernels(microbench.DefaultSet())
		if err != nil {
			bundleErr = err
			return
		}
		ts, err := model.CollectTraining(hw.V100(), ks, 16)
		if err != nil {
			bundleErr = err
			return
		}
		bundleM, bundleErr = model.Train(hw.V100(), ts, model.AlgoForest)
	})
	if bundleErr != nil {
		t.Fatal(bundleErr)
	}
	return bundleM
}

func testServer(t testing.TB) (*Server, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewRegistry()
	s, err := New(testBundle(t), reg)
	if err != nil {
		t.Fatal(err)
	}
	return s, reg
}

// featureMap extracts a benchmark's static counts in wire format.
func featureMap(t testing.TB, name string) map[string]float64 {
	t.Helper()
	b, err := benchsuite.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	v, err := features.Extract(b.Kernel)
	if err != nil {
		t.Fatal(err)
	}
	return v.ToMap()
}

func postJSON(t testing.TB, h http.Handler, path string, body any) (*httptest.ResponseRecorder, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(buf))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	out, err := io.ReadAll(w.Result().Body)
	if err != nil {
		t.Fatal(err)
	}
	return w, out
}

func TestAdviseFeaturesEndpoint(t *testing.T) {
	s, _ := testServer(t)
	fm := featureMap(t, "black_scholes")
	w, out := postJSON(t, s, "/v1/advise", Request{Target: "MIN_ENERGY", Features: fm})
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, out)
	}
	var resp Response
	if err := json.Unmarshal(out, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Device != s.Models().Spec.Name || resp.Algo != model.AlgoForest {
		t.Errorf("bundle identity %s/%s", resp.Device, resp.Algo)
	}
	inTable := false
	for _, f := range s.Models().Spec.CoreFreqsMHz {
		if f == resp.FreqMHz {
			inTable = true
		}
	}
	if !inTable {
		t.Errorf("advised %d MHz is not in the frequency table", resp.FreqMHz)
	}
	// The daemon must agree with the library path it fronts.
	v, err := features.FromMap(fm)
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.Models().SearchFrequency(v, metrics.MinEnergy)
	if err != nil {
		t.Fatal(err)
	}
	if resp.FreqMHz != want {
		t.Errorf("advised %d MHz, library says %d MHz", resp.FreqMHz, want)
	}
	if resp.TimeNs <= 0 || resp.EnergyNanoJ <= 0 {
		t.Errorf("non-positive prediction: %+v", resp)
	}
}

func TestAdviseKIRGroundTruth(t *testing.T) {
	s, _ := testServer(t)
	b, err := benchsuite.ByName("vec_add")
	if err != nil {
		t.Fatal(err)
	}
	w, out := postJSON(t, s, "/v1/advise", Request{
		Target:      "MIN_EDP",
		KIR:         b.Kernel.Disassemble(),
		Items:       b.CharItems,
		GroundTruth: true,
	})
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, out)
	}
	var resp Response
	if err := json.Unmarshal(out, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ActualFreqMHz == 0 {
		t.Fatal("ground-truth optimum missing")
	}
	gt, err := model.GroundTruthSweep(s.Models().Spec, b.Kernel, b.CharItems)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := gt.Select(metrics.MinEDP)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ActualFreqMHz != sel.FreqMHz {
		t.Errorf("actual %d MHz, sweep says %d MHz", resp.ActualFreqMHz, sel.FreqMHz)
	}
}

func TestAdviseRejectsBadInput(t *testing.T) {
	s, _ := testServer(t)
	fm := featureMap(t, "vec_add")
	cases := []struct {
		name string
		req  Request
	}{
		{"bad target", Request{Target: "BOGUS", Features: fm}},
		{"no input", Request{Target: "MIN_ENERGY"}},
		{"both inputs", Request{Target: "MIN_ENERGY", Features: fm, KIR: "kernel k {\n}"}},
		{"unknown feature", Request{Target: "MIN_ENERGY", Features: map[string]float64{"k_bogus": 1}}},
		{"bad kir", Request{Target: "MIN_ENERGY", KIR: "not assembly"}},
		{"ground truth without kir", Request{Target: "MIN_ENERGY", Features: fm, GroundTruth: true}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			w, out := postJSON(t, s, "/v1/advise", c.req)
			if w.Code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400 (%s)", w.Code, out)
			}
			var e map[string]string
			if err := json.Unmarshal(out, &e); err != nil || e["error"] == "" {
				t.Fatalf("error envelope missing: %s", out)
			}
		})
	}

	req := httptest.NewRequest(http.MethodGet, "/v1/advise", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET advise: status %d, want 405", w.Code)
	}

	req = httptest.NewRequest(http.MethodPost, "/v1/advise", strings.NewReader("{"))
	w = httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("truncated JSON: status %d, want 400", w.Code)
	}
}

func TestBatchEndpoint(t *testing.T) {
	s, reg := testServer(t)
	fm := featureMap(t, "matmul")
	batch := []Request{
		{Target: "MIN_ENERGY", Features: fm},
		{Target: "BOGUS", Features: fm}, // bad item must not fail the batch
		{Target: "ES_25", Features: fm},
	}
	w, out := postJSON(t, s, "/v1/batch", batch)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, out)
	}
	var results []BatchResult
	if err := json.Unmarshal(out, &results); err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("%d results, want 3", len(results))
	}
	if results[0].Error != "" || results[0].Response == nil {
		t.Errorf("item 0 failed: %+v", results[0])
	}
	if results[1].Error == "" {
		t.Error("bad item 1 did not report an error")
	}
	if results[2].Error != "" || results[2].Response == nil {
		t.Errorf("item 2 failed: %+v", results[2])
	}
	if got := reg.Snapshot().CounterValue("serve_advises_total"); got != 2 {
		t.Errorf("serve_advises_total = %d, want 2", got)
	}

	if w, _ := postJSON(t, s, "/v1/batch", []Request{}); w.Code != http.StatusBadRequest {
		t.Errorf("empty batch: status %d, want 400", w.Code)
	}
	big := make([]Request, MaxBatch+1)
	if w, _ := postJSON(t, s, "/v1/batch", big); w.Code != http.StatusBadRequest {
		t.Errorf("oversized batch: status %d, want 400", w.Code)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	s, _ := testServer(t)
	fm := featureMap(t, "median")
	if w, out := postJSON(t, s, "/v1/advise", Request{Target: "MIN_ENERGY", Features: fm}); w.Code != http.StatusOK {
		t.Fatalf("advise: %d %s", w.Code, out)
	}

	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("healthz: %d", w.Code)
	}
	var h map[string]string
	if err := json.NewDecoder(w.Result().Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h["status"] != "ok" || h["device"] == "" {
		t.Errorf("healthz body: %v", h)
	}

	req = httptest.NewRequest(http.MethodGet, "/metrics", nil)
	w = httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("metrics: %d", w.Code)
	}
	body, _ := io.ReadAll(w.Result().Body)
	for _, want := range []string{"serve_advises_total", "serve_predictions_total"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics exposition missing %s:\n%s", want, body)
		}
	}
}

func TestUnfitBundleRefused(t *testing.T) {
	m := &model.Models{Spec: hw.V100(), Algo: model.AlgoForest}
	if _, err := New(m, nil); err == nil {
		t.Fatal("server accepted an unfit bundle")
	}
}

// TestConcurrentAdvise drives the daemon from many clients at once over
// real HTTP. CI re-runs it under -race: the pooled predictors, the
// feature cache and the telemetry counters all get exercised
// concurrently. Every response must equal the single-threaded answer.
func TestConcurrentAdvise(t *testing.T) {
	s, reg := testServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()

	benches := []string{"black_scholes", "matmul", "vec_add", "median"}
	targets := []string{"MIN_ENERGY", "MIN_EDP", "ES_25", "MAX_PERF"}
	type key struct{ bench, target string }
	want := map[key]int{}
	for _, b := range benches {
		fm := featureMap(t, b)
		v, err := features.FromMap(fm)
		if err != nil {
			t.Fatal(err)
		}
		for _, tgt := range targets {
			target, err := metrics.ParseTarget(tgt)
			if err != nil {
				t.Fatal(err)
			}
			f, err := s.Models().SearchFrequency(v, target)
			if err != nil {
				t.Fatal(err)
			}
			want[key{b, tgt}] = f
		}
	}

	const clients = 8
	const perClient = 24
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				b := benches[(c+i)%len(benches)]
				tgt := targets[i%len(targets)]
				buf, _ := json.Marshal(Request{Target: tgt, Features: featureMapQuiet(b)})
				resp, err := http.Post(ts.URL+"/v1/advise", "application/json", bytes.NewReader(buf))
				if err != nil {
					errs <- err
					return
				}
				var r Response
				err = json.NewDecoder(resp.Body).Decode(&r)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("status %d", resp.StatusCode)
					return
				}
				if r.FreqMHz != want[key{b, tgt}] {
					errs <- fmt.Errorf("%s/%s: got %d MHz, want %d MHz", b, tgt, r.FreqMHz, want[key{b, tgt}])
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := reg.Snapshot().CounterValue("serve_advises_total"); got != clients*perClient {
		t.Errorf("serve_advises_total = %d, want %d", got, clients*perClient)
	}
}

// featureMapQuiet is featureMap without the testing.TB plumbing, for
// use inside client goroutines (benchsuite lookups cannot fail here:
// the names are vetted by the caller).
func featureMapQuiet(name string) map[string]float64 {
	b, err := benchsuite.ByName(name)
	if err != nil {
		panic(err)
	}
	v, err := features.Extract(b.Kernel)
	if err != nil {
		panic(err)
	}
	return v.ToMap()
}

// TestServeLoadProfile is the load-generation harness behind
// BENCH_serve.json: N concurrent clients hammer /v1/advise over real
// HTTP and the test reports throughput and latency quantiles. It
// asserts only sanity (all responses OK); the reference numbers live
// in BENCH_serve.json.
func TestServeLoadProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("load profile skipped in -short")
	}
	s, _ := testServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()

	const clients = 8
	const perClient = 100
	fm := featureMap(t, "black_scholes")
	body, err := json.Marshal(Request{Target: "MIN_ENERGY", Features: fm})
	if err != nil {
		t.Fatal(err)
	}

	lat := make([][]time.Duration, clients)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			lat[c] = make([]time.Duration, 0, perClient)
			for i := 0; i < perClient; i++ {
				t0 := time.Now()
				resp, err := http.Post(ts.URL+"/v1/advise", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("status %d", resp.StatusCode)
					return
				}
				lat[c] = append(lat[c], time.Since(t0))
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	var all []time.Duration
	for _, l := range lat {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	q := func(p float64) time.Duration { return all[int(p*float64(len(all)-1))] }
	total := clients * perClient
	rps := float64(total) / wall.Seconds()
	preds := float64(4*len(s.Models().Spec.CoreFreqsMHz)) * rps
	t.Logf("%d requests, %d clients: %.0f req/s (%.0f model predictions/s), p50 %v, p99 %v",
		total, clients, rps, preds, q(0.50), q(0.99))
}
