package serve

import (
	"context"
	"sync"
	"sync/atomic"

	"synergy/internal/telemetry"
)

// Shed reasons, used both as the serve_shed_total{reason} label and in
// the 429/503 error envelope.
const (
	// ShedQueueFull: the in-flight gate and its wait queue are both at
	// capacity.
	ShedQueueFull = "queue-full"
	// ShedDeadline: the request's deadline had already expired on
	// arrival, or expired while it waited in the queue. Doing the work
	// anyway would burn a slot computing an answer nobody is waiting
	// for.
	ShedDeadline = "deadline"
	// ShedDraining: the server is draining for shutdown; load balancers
	// have been told via /readyz and new work is refused.
	ShedDraining = "draining"
)

// shedError reports an admission refusal with its reason.
type shedError struct{ reason string }

func (e *shedError) Error() string { return "serve: overloaded, request shed: " + e.reason }

// gate is the admission controller: a bounded in-flight semaphore with
// a bounded, deadline-aware wait queue in front of it. Requests past
// both bounds — or whose deadline expires while queued — are shed
// immediately instead of piling up unboundedly.
type gate struct {
	slots    chan struct{} // buffered; one token per in-flight request
	maxQueue int

	mu     sync.Mutex
	queued int

	inflight atomic.Int64
	peak     atomic.Int64 // high-water mark of inflight

	inflightG *telemetry.Gauge
	queueG    *telemetry.Gauge
}

func newGate(maxInFlight, maxQueue int, reg *telemetry.Registry) *gate {
	return &gate{
		slots:     make(chan struct{}, maxInFlight),
		maxQueue:  maxQueue,
		inflightG: reg.Gauge("serve_inflight"),
		queueG:    reg.Gauge("serve_queue_depth"),
	}
}

// Acquire admits one request or sheds it with a *shedError. On success
// the caller must Release exactly once.
func (g *gate) Acquire(ctx context.Context) error {
	// A request that arrives with its budget already spent is shed
	// without touching the queue.
	if ctx.Err() != nil {
		return &shedError{reason: ShedDeadline}
	}
	// Fast path: a free slot, no queuing.
	select {
	case g.slots <- struct{}{}:
		g.admitted()
		return nil
	default:
	}
	// Slow path: queue if the queue has room.
	g.mu.Lock()
	if g.queued >= g.maxQueue {
		g.mu.Unlock()
		return &shedError{reason: ShedQueueFull}
	}
	g.queued++
	depth := g.queued
	g.mu.Unlock()
	g.queueG.Set(float64(depth))

	defer func() {
		g.mu.Lock()
		g.queued--
		depth := g.queued
		g.mu.Unlock()
		g.queueG.Set(float64(depth))
	}()

	select {
	case g.slots <- struct{}{}:
		g.admitted()
		return nil
	case <-ctx.Done():
		return &shedError{reason: ShedDeadline}
	}
}

// admitted updates the in-flight accounting after a slot acquisition.
func (g *gate) admitted() {
	n := g.inflight.Add(1)
	for {
		p := g.peak.Load()
		if n <= p || g.peak.CompareAndSwap(p, n) {
			break
		}
	}
	g.inflightG.Set(float64(n))
}

// Release returns one slot.
func (g *gate) Release() {
	n := g.inflight.Add(-1)
	g.inflightG.Set(float64(n))
	<-g.slots
}

// InFlight returns the number of admitted, unfinished requests.
func (g *gate) InFlight() int { return int(g.inflight.Load()) }

// Queued returns the current wait-queue depth.
func (g *gate) Queued() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.queued
}

// Peak returns the high-water mark of concurrent in-flight requests —
// the chaos soak asserts it never exceeds the configured gate.
func (g *gate) Peak() int { return int(g.peak.Load()) }
