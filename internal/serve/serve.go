// Package serve implements the SYnergy frequency-advice daemon: an
// HTTP/JSON front-end over one trained per-device model bundle
// (internal/model). A client submits either the kernel's static feature
// counts (the compiler-pass output of §5) or a raw .kir kernel body,
// plus an energy target, and receives the recommended core frequency
// with the model's predicted time/energy and ES/PL tradeoff.
//
// The daemon is overload-proof by construction (DESIGN.md §15):
//
//   - Admission control: a bounded in-flight gate with a bounded,
//     deadline-aware wait queue. Excess load is shed with 429 +
//     Retry-After instead of queuing without bound; sheds are counted
//     per reason in serve_shed_total.
//   - Deadlines: every request runs under a context budget (the
//     X-Request-Deadline header, or the server default), threaded
//     through feature extraction, prediction and the ground-truth
//     sweep. Work is abandoned the moment its requester stops waiting.
//   - Degraded modes: the ground-truth sweep backend sits behind a
//     wall-clock circuit breaker; repeated sweep timeouts trip it open
//     and requests fall back to model-only advice with a "degraded"
//     field instead of failing. /healthz is pure liveness; /readyz
//     reports ready|degraded|draining with reasons.
//   - Hot reload: POST /v1/reload (or SIGHUP in cmd/synergy-serve)
//     validates a candidate bundle off the request path and swaps it
//     atomically; every response echoes the serving bundle's
//     fingerprint, so reloads are provably atomic.
//
// The hot path is allocation-lean: prediction sessions
// (model.Predictor) are pooled per bundle and reused, the flattened
// forests walk index arrays, and repeated kernels hit the
// fingerprint-keyed feature cache. Request counters, latency
// histograms and gate gauges are exported on /metrics (text) and
// /metrics.json (canonical snapshot).
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"synergy/internal/fault"
	"synergy/internal/features"
	"synergy/internal/kernelir"
	"synergy/internal/metrics"
	"synergy/internal/model"
	"synergy/internal/resilience"
	"synergy/internal/sweep"
	"synergy/internal/telemetry"
)

// MaxBatch bounds /v1/batch request fan-out so one request cannot pin
// the daemon arbitrarily long.
const MaxBatch = 1024

// DeadlineHeader carries the per-request budget as a Go duration
// ("250ms", "2s"). Absent, the server default applies.
const DeadlineHeader = "X-Request-Deadline"

// Fault-injection sites the daemon consults (internal/fault). Delays
// at these sites burn *real* time (fault.SleepContext), so injected
// latency interacts with request deadlines exactly like a slow
// dependency would.
const (
	SiteExtract = "serve.extract"
	SitePredict = "serve.predict"
	SiteSweep   = "serve.sweep"
	SiteReload  = "serve.reload"
)

// Config bounds and parameterises the daemon. The zero value means
// "use the default" for every field.
type Config struct {
	// MaxInFlight bounds concurrently executing requests (default 64).
	MaxInFlight int
	// MaxQueue bounds requests waiting for a slot (default 256).
	MaxQueue int
	// DefaultDeadline is the request budget when the client sends no
	// X-Request-Deadline header (default 30s).
	DefaultDeadline time.Duration
	// SweepTimeout is the per-request sub-budget of the ground-truth
	// sweep cross-check (default 10s). A sweep slower than this fails
	// the breaker and degrades the response, not the request.
	SweepTimeout time.Duration
	// MaxBodyBytes bounds any client request body (default 4 MiB);
	// larger bodies get 413.
	MaxBodyBytes int64
	// MaxReloadBytes bounds the /v1/reload body (default 256 MiB):
	// inline bundles are operator-supplied model artifacts, far larger
	// than client requests but still bounded.
	MaxReloadBytes int64
	// MaxKernelBytes bounds the raw .kir payload inside a request
	// (default 256 KiB).
	MaxKernelBytes int
	// RetryAfter is the Retry-After hint on shed responses (default 1s).
	RetryAfter time.Duration
	// Breaker parameterises the sweep-backend circuit breaker. The
	// zero value uses FailureThreshold 3, a 5s cool-down and 1 probe
	// success.
	Breaker resilience.Config
	// Clock drives the sweep breaker's transition timestamps; nil uses
	// a monotonic wall clock. The serve-chaos harness scripts it for
	// byte-identical breaker traces.
	Clock resilience.Clock
	// Fault is an optional injector consulted at the Site* points.
	Fault *fault.Injector
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 256
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.SweepTimeout <= 0 {
		c.SweepTimeout = 10 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 4 << 20
	}
	if c.MaxReloadBytes <= 0 {
		c.MaxReloadBytes = 256 << 20
	}
	if c.MaxKernelBytes <= 0 {
		c.MaxKernelBytes = 256 << 10
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Breaker == (resilience.Config{}) {
		c.Breaker = resilience.Config{FailureThreshold: 3, CooldownSec: 5, HalfOpenSuccesses: 1}
	}
	return c
}

// Request is one advice query. Exactly one of Features and KIR must be
// set: Features carries the Table-1 static counts by canonical name
// (features.Names); KIR carries a kernel in .kir assembly, which the
// daemon assembles and runs through the static feature extractor.
type Request struct {
	// Target is the energy target in the paper's notation: MAX_PERF,
	// MIN_ENERGY, MIN_EDP, MIN_ED2P, ES_x, PL_x.
	Target string `json:"target"`
	// Features maps canonical feature names to per-work-item counts.
	Features map[string]float64 `json:"features,omitempty"`
	// KIR is a kernel body in .kir assembly.
	KIR string `json:"kir,omitempty"`
	// Items is the launch size; only consulted with GroundTruth.
	Items int64 `json:"items,omitempty"`
	// GroundTruth asks the daemon to also sweep the kernel through the
	// device model (requires KIR and Items) and report the measured
	// optimum next to the prediction.
	GroundTruth bool `json:"ground_truth,omitempty"`
}

// Response is the advice for one Request.
type Response struct {
	Device      string `json:"device"`
	Algo        string `json:"algo"`
	Target      string `json:"target"`
	FreqMHz     int    `json:"freq_mhz"`
	BaselineMHz int    `json:"baseline_mhz"`
	// TimeNs and EnergyNanoJ are the predicted per-work-item cost at
	// FreqMHz.
	TimeNs      float64 `json:"time_ns_per_item"`
	EnergyNanoJ float64 `json:"energy_nj_per_item"`
	// ESPct / PLPct are the predicted energy saving and performance
	// loss at FreqMHz versus the baseline clock, in percent.
	ESPct float64 `json:"es_pct"`
	PLPct float64 `json:"pl_pct"`
	// Bundle is the content fingerprint of the model bundle this
	// response was computed from — a single bundle by construction,
	// which is what makes hot reloads provably atomic.
	Bundle string `json:"bundle"`
	// Degraded names the degraded mode, when the ground-truth
	// cross-check was skipped or abandoned ("sweep-breaker-open",
	// "sweep-timeout", "sweep-error"). Empty on full service.
	Degraded string `json:"degraded,omitempty"`
	// ActualFreqMHz is the ground-truth optimum (GroundTruth only).
	ActualFreqMHz int `json:"actual_freq_mhz,omitempty"`
}

// BatchResult wraps one Response in /v1/batch, where a single bad item
// must not fail the whole batch.
type BatchResult struct {
	*Response
	Error string `json:"error,omitempty"`
}

type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &httpError{code: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

func payloadTooLarge(format string, args ...any) error {
	return &httpError{code: http.StatusRequestEntityTooLarge, msg: fmt.Sprintf(format, args...)}
}

// Server is the daemon: an atomically swappable model bundle with its
// pooled prediction sessions, the admission gate, the sweep breaker
// and the telemetry registry backing /metrics.
type Server struct {
	cfg Config
	reg *telemetry.Registry
	mux *http.ServeMux

	bundle   atomic.Pointer[activeBundle]
	gate     *gate
	breaker  *resilience.WallBreaker
	draining atomic.Bool
	reloadMu sync.Mutex
	inj      *fault.Injector

	advises  *telemetry.Counter
	predicts *telemetry.Counter
	errors   *telemetry.Counter
}

// New validates the bundle and builds the daemon around it with
// default bounds. reg may be nil (metrics become no-ops and /metrics
// serves an empty exposition).
func New(m *model.Models, reg *telemetry.Registry) (*Server, error) {
	return NewWithConfig(m, reg, Config{})
}

// NewWithConfig is New with explicit bounds, breaker parameters, clock
// and fault injector.
func NewWithConfig(m *model.Models, reg *telemetry.Registry, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	ab, err := newActiveBundle(m)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		reg:      reg,
		gate:     newGate(cfg.MaxInFlight, cfg.MaxQueue, reg),
		breaker:  resilience.NewWallBreaker("serve-sweep", cfg.Breaker, cfg.Clock),
		inj:      cfg.Fault,
		advises:  reg.Counter("serve_advises_total"),
		predicts: reg.Counter("serve_predictions_total"),
		errors:   reg.Counter("serve_errors_total"),
	}
	s.breaker.Inner().SetTelemetry(reg)
	s.bundle.Store(ab)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/advise", s.endpoint("advise", true, s.handleAdvise))
	s.mux.HandleFunc("/v1/batch", s.endpoint("batch", true, s.handleBatch))
	s.mux.HandleFunc("/v1/reload", s.endpoint("reload", false, s.handleReload))
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/metrics.json", s.handleMetricsJSON)
	return s, nil
}

// Models returns the bundle the daemon currently serves.
func (s *Server) Models() *model.Models { return s.bundle.Load().m }

// BundleFingerprint returns the current bundle's content fingerprint.
func (s *Server) BundleFingerprint() string { return s.bundle.Load().fp }

// InFlight returns the number of admitted, unfinished requests.
func (s *Server) InFlight() int { return s.gate.InFlight() }

// InFlightPeak returns the high-water mark of concurrent in-flight
// requests since the server started — never above Config.MaxInFlight.
func (s *Server) InFlightPeak() int { return s.gate.Peak() }

// QueueDepth returns the current admission-queue depth.
func (s *Server) QueueDepth() int { return s.gate.Queued() }

// SweepBreaker returns the breaker guarding the ground-truth sweep
// backend.
func (s *Server) SweepBreaker() *resilience.WallBreaker { return s.breaker }

// StartDraining flips the server into draining mode: /readyz reports
// draining with 503 (so load balancers stop routing) and new gated
// requests are shed with 503; in-flight requests finish normally.
func (s *Server) StartDraining() { s.draining.Store(true) }

// Draining reports whether the server is draining.
func (s *Server) Draining() bool { return s.draining.Load() }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// endpoint wraps a POST handler with the full admission pipeline:
// method check, deadline resolution, optional gate admission, body
// bounding, and per-route outcome accounting (serve_requests_total and
// the serve_request_seconds latency histogram).
func (s *Server) endpoint(route string, gated bool, fn func(ctx context.Context, w http.ResponseWriter, r *http.Request) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		limit := s.cfg.MaxBodyBytes
		if route == "reload" {
			limit = s.cfg.MaxReloadBytes
		}
		outcome := s.serveOne(w, r, gated, limit, fn)
		s.reg.Counter("serve_requests_total", "route", route, "outcome", outcome).Inc()
		s.reg.Histogram("serve_request_seconds", telemetry.TimeBuckets, "route", route, "outcome", outcome).
			Observe(time.Since(start).Seconds())
	}
}

func (s *Server) serveOne(w http.ResponseWriter, r *http.Request, gated bool, bodyLimit int64, fn func(ctx context.Context, w http.ResponseWriter, r *http.Request) error) string {
	if r.Method != http.MethodPost {
		s.fail(w, &httpError{code: http.StatusMethodNotAllowed, msg: "serve: POST only"})
		return "client-error"
	}
	budget := s.cfg.DefaultDeadline
	if h := r.Header.Get(DeadlineHeader); h != "" {
		d, err := time.ParseDuration(h)
		if err != nil || d <= 0 {
			s.fail(w, badRequest("serve: bad %s %q (want a positive Go duration)", DeadlineHeader, h))
			return "client-error"
		}
		budget = d
	}
	ctx, cancel := context.WithTimeout(r.Context(), budget)
	defer cancel()

	if gated {
		if s.draining.Load() {
			s.shed(w, ShedDraining, http.StatusServiceUnavailable)
			return "shed"
		}
		if err := s.gate.Acquire(ctx); err != nil {
			var se *shedError
			if errors.As(err, &se) {
				s.shed(w, se.reason, http.StatusTooManyRequests)
			} else {
				s.fail(w, err)
			}
			return "shed"
		}
		defer s.gate.Release()
	}
	// A slow client that never finishes sending its body must not pin a
	// gate slot past its budget: bound the connection's reads by the
	// request deadline. (No-op on transports without deadlines, e.g.
	// httptest recorders.)
	if d, ok := ctx.Deadline(); ok {
		_ = http.NewResponseController(w).SetReadDeadline(d)
	}
	r.Body = http.MaxBytesReader(w, r.Body, bodyLimit)
	err := fn(ctx, w, r)
	if err == nil {
		return "ok"
	}
	s.fail(w, err)
	_, outcome := classify(err)
	return outcome
}

// faultPoint consults the injector at a site, burning any injected
// delay in real time under the request context.
func (s *Server) faultPoint(ctx context.Context, site string) error {
	delay, err := s.inj.Check(site)
	if delay > 0 {
		if serr := fault.SleepContext(ctx, delay); serr != nil {
			return serr
		}
	}
	if err != nil {
		return fmt.Errorf("serve: %s: %w", site, err)
	}
	return ctx.Err()
}

// advise resolves one request through the current bundle's pooled
// prediction sessions, honoring the context budget at every stage.
func (s *Server) advise(ctx context.Context, req *Request) (*Response, error) {
	b := s.bundle.Load()
	target, err := metrics.ParseTarget(req.Target)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	var v features.Vector
	var k *kernelir.Kernel
	switch {
	case req.KIR != "" && req.Features != nil:
		return nil, badRequest(`serve: "features" and "kir" are mutually exclusive`)
	case req.KIR != "":
		if len(req.KIR) > s.cfg.MaxKernelBytes {
			return nil, payloadTooLarge("serve: kir payload of %d bytes exceeds the %d-byte kernel limit",
				len(req.KIR), s.cfg.MaxKernelBytes)
		}
		if err := s.faultPoint(ctx, SiteExtract); err != nil {
			return nil, err
		}
		k, err = kernelir.Assemble(req.KIR)
		if err != nil {
			return nil, badRequest("%v", err)
		}
		v, err = features.ExtractContext(ctx, k)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, badRequest("%v", err)
		}
	case req.Features != nil:
		v, err = features.FromMap(req.Features)
		if err != nil {
			return nil, badRequest("%v", err)
		}
	default:
		return nil, badRequest(`serve: request needs either "features" or "kir"`)
	}
	if req.GroundTruth {
		// Validate the cross-check inputs before spending prediction
		// work: these are client errors, not sweep failures.
		if k == nil {
			return nil, badRequest(`serve: "ground_truth" needs a "kir" kernel`)
		}
		if req.Items <= 0 {
			return nil, badRequest(`serve: "ground_truth" needs a positive "items" launch size`)
		}
	}

	if err := s.faultPoint(ctx, SitePredict); err != nil {
		return nil, err
	}
	p := b.pool.Get().(*model.Predictor)
	a, err := p.Advise(v, target)
	b.pool.Put(p)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.advises.Inc()
	// One advise evaluates four models over the whole frequency table.
	s.predicts.Add(int64(4 * len(b.m.Spec.CoreFreqsMHz)))

	resp := &Response{
		Device:      b.m.Spec.Name,
		Algo:        b.m.Algo,
		Target:      target.String(),
		FreqMHz:     a.FreqMHz,
		BaselineMHz: a.BaselineMHz,
		TimeNs:      a.TimeNs,
		EnergyNanoJ: a.EnergyNanoJ,
		ESPct:       a.ESPct,
		PLPct:       a.PLPct,
		Bundle:      b.fp,
	}
	if req.GroundTruth {
		if err := s.crossCheck(ctx, b, k, req.Items, target, resp); err != nil {
			return nil, err
		}
	}
	return resp, nil
}

// crossCheck runs the ground-truth sweep behind the circuit breaker.
// Sweep trouble degrades the response (model-only advice with the
// Degraded field set) instead of failing the request; only an expired
// *request* budget fails it.
func (s *Server) crossCheck(ctx context.Context, b *activeBundle, k *kernelir.Kernel, items int64, target metrics.Target, resp *Response) error {
	if !s.breaker.Allow() {
		s.degrade(resp, "sweep-breaker-open")
		return nil
	}
	sctx, cancel := context.WithTimeout(ctx, s.cfg.SweepTimeout)
	defer cancel()
	err := func() error {
		delay, ferr := s.inj.Check(SiteSweep)
		if delay > 0 {
			if serr := fault.SleepContext(sctx, delay); serr != nil {
				return serr
			}
		}
		if ferr != nil {
			return ferr
		}
		gt, err := sweep.GroundTruthContext(sctx, b.m.Spec, k, items)
		if err != nil {
			return err
		}
		sel, err := gt.Select(target)
		if err != nil {
			return err
		}
		resp.ActualFreqMHz = sel.FreqMHz
		return nil
	}()
	if err == nil {
		s.breaker.RecordSuccess()
		return nil
	}
	if ctx.Err() != nil {
		// The request's own budget is spent: nobody is waiting for a
		// degraded answer either.
		return ctx.Err()
	}
	s.breaker.RecordFailure()
	if errors.Is(err, context.DeadlineExceeded) {
		s.degrade(resp, "sweep-timeout")
	} else {
		s.degrade(resp, "sweep-error")
	}
	return nil
}

// degrade marks the response as served in a degraded mode.
func (s *Server) degrade(resp *Response, reason string) {
	resp.Degraded = reason
	resp.ActualFreqMHz = 0
	s.reg.Counter("serve_degraded_total", "reason", reason).Inc()
}

func (s *Server) handleAdvise(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	var req Request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return decodeError("request", err)
	}
	resp, err := s.advise(ctx, &req)
	if err != nil {
		return err
	}
	writeJSON(w, http.StatusOK, resp)
	return nil
}

func (s *Server) handleBatch(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	var reqs []Request
	if err := json.NewDecoder(r.Body).Decode(&reqs); err != nil {
		return decodeError("batch", err)
	}
	if len(reqs) == 0 {
		return badRequest("serve: empty batch")
	}
	if len(reqs) > MaxBatch {
		return badRequest("serve: batch of %d exceeds limit %d", len(reqs), MaxBatch)
	}
	results := make([]BatchResult, len(reqs))
	for i := range reqs {
		// Per-item cancellation: once the batch budget is spent the
		// remaining items are annotated instead of computed.
		if err := ctx.Err(); err != nil {
			s.errors.Inc()
			results[i].Error = "serve: batch budget exhausted: " + err.Error()
			continue
		}
		resp, err := s.advise(ctx, &reqs[i])
		if err != nil {
			s.errors.Inc()
			results[i].Error = err.Error()
			continue
		}
		results[i].Response = resp
	}
	writeJSON(w, http.StatusOK, results)
	return nil
}

// decodeError maps body-decoding failures: an over-limit body is 413,
// an expired read deadline or budget stays a deadline failure (classify
// turns it into 408/504), anything else is a plain 400.
func decodeError(what string, err error) error {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return payloadTooLarge("serve: %s body exceeds the %d-byte limit", what, mbe.Limit)
	}
	if errors.Is(err, os.ErrDeadlineExceeded) ||
		errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return err
	}
	return badRequest("serve: decoding %s: %v", what, err)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// Pure liveness: the process is up and holds a servable bundle.
	// Readiness (degradation, draining) lives on /readyz.
	b := s.bundle.Load()
	writeJSON(w, http.StatusOK, map[string]string{
		"status": "ok",
		"device": b.m.Spec.Name,
		"algo":   b.m.Algo,
		"bundle": b.fp,
	})
}

// ReadyState is the /readyz body.
type ReadyState struct {
	Status  string   `json:"status"` // ready | degraded | draining
	Reasons []string `json:"reasons,omitempty"`
	Device  string   `json:"device"`
	Algo    string   `json:"algo"`
	Bundle  string   `json:"bundle"`
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	b := s.bundle.Load()
	st := ReadyState{Status: "ready", Device: b.m.Spec.Name, Algo: b.m.Algo, Bundle: b.fp}
	code := http.StatusOK
	if bs := s.breaker.Current(); bs != resilience.Closed {
		st.Status = "degraded"
		st.Reasons = append(st.Reasons, "sweep-breaker-"+bs.String())
	}
	if s.draining.Load() {
		// Draining dominates: load balancers must stop routing here.
		st.Status = "draining"
		st.Reasons = append(st.Reasons, "draining")
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, st)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if s.reg == nil {
		return
	}
	_ = s.reg.WriteText(w)
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.reg.Snapshot())
}

// shed writes the refusal envelope with the Retry-After hint and
// counts the shed per reason.
func (s *Server) shed(w http.ResponseWriter, reason string, code int) {
	s.reg.Counter("serve_shed_total", "reason", reason).Inc()
	secs := int(s.cfg.RetryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeJSON(w, code, map[string]string{
		"error":  "serve: overloaded, request shed",
		"reason": reason,
	})
}

// classify maps an error to its HTTP status and outcome label.
func classify(err error) (code int, outcome string) {
	var he *httpError
	if errors.As(err, &he) {
		if he.code >= 400 && he.code < 500 {
			return he.code, "client-error"
		}
		return he.code, "error"
	}
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge, "client-error"
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return http.StatusGatewayTimeout, "deadline"
	}
	if errors.Is(err, os.ErrDeadlineExceeded) {
		// The connection read deadline fired while the client dribbled
		// (or never sent) its body.
		return http.StatusRequestTimeout, "deadline"
	}
	return http.StatusInternalServerError, "error"
}

// fail writes the JSON error envelope and counts the failure.
func (s *Server) fail(w http.ResponseWriter, err error) {
	s.errors.Inc()
	code, _ := classify(err)
	msg := err.Error()
	if code == http.StatusGatewayTimeout {
		msg = "serve: request deadline exceeded: " + msg
	}
	writeJSON(w, code, map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}
