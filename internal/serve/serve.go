// Package serve implements the SYnergy frequency-advice daemon: an
// HTTP/JSON front-end over one trained per-device model bundle
// (internal/model). A client submits either the kernel's static feature
// counts (the compiler-pass output of §5) or a raw .kir kernel body,
// plus an energy target, and receives the recommended core frequency
// with the model's predicted time/energy and ES/PL tradeoff.
//
// The hot path is allocation-lean by construction: prediction sessions
// (model.Predictor) are pooled and reused, the flattened forests walk
// index arrays, and repeated kernels hit the fingerprint-keyed feature
// cache. Request counters are exported on /metrics through the shared
// telemetry registry.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"synergy/internal/features"
	"synergy/internal/kernelir"
	"synergy/internal/metrics"
	"synergy/internal/model"
	"synergy/internal/sweep"
	"synergy/internal/telemetry"
)

// MaxBatch bounds /v1/batch request fan-out so one request cannot pin
// the daemon arbitrarily long.
const MaxBatch = 1024

// Request is one advice query. Exactly one of Features and KIR must be
// set: Features carries the Table-1 static counts by canonical name
// (features.Names); KIR carries a kernel in .kir assembly, which the
// daemon assembles and runs through the static feature extractor.
type Request struct {
	// Target is the energy target in the paper's notation: MAX_PERF,
	// MIN_ENERGY, MIN_EDP, MIN_ED2P, ES_x, PL_x.
	Target string `json:"target"`
	// Features maps canonical feature names to per-work-item counts.
	Features map[string]float64 `json:"features,omitempty"`
	// KIR is a kernel body in .kir assembly.
	KIR string `json:"kir,omitempty"`
	// Items is the launch size; only consulted with GroundTruth.
	Items int64 `json:"items,omitempty"`
	// GroundTruth asks the daemon to also sweep the kernel through the
	// device model (requires KIR and Items) and report the measured
	// optimum next to the prediction.
	GroundTruth bool `json:"ground_truth,omitempty"`
}

// Response is the advice for one Request.
type Response struct {
	Device      string `json:"device"`
	Algo        string `json:"algo"`
	Target      string `json:"target"`
	FreqMHz     int    `json:"freq_mhz"`
	BaselineMHz int    `json:"baseline_mhz"`
	// TimeNs and EnergyNanoJ are the predicted per-work-item cost at
	// FreqMHz.
	TimeNs      float64 `json:"time_ns_per_item"`
	EnergyNanoJ float64 `json:"energy_nj_per_item"`
	// ESPct / PLPct are the predicted energy saving and performance
	// loss at FreqMHz versus the baseline clock, in percent.
	ESPct float64 `json:"es_pct"`
	PLPct float64 `json:"pl_pct"`
	// ActualFreqMHz is the ground-truth optimum (GroundTruth only).
	ActualFreqMHz int `json:"actual_freq_mhz,omitempty"`
}

// BatchResult wraps one Response in /v1/batch, where a single bad item
// must not fail the whole batch.
type BatchResult struct {
	*Response
	Error string `json:"error,omitempty"`
}

type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &httpError{code: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// Server is the daemon: one model bundle, a pool of prediction
// sessions, and the telemetry registry backing /metrics.
type Server struct {
	m    *model.Models
	reg  *telemetry.Registry
	pool sync.Pool
	mux  *http.ServeMux

	advises  *telemetry.Counter
	predicts *telemetry.Counter
	errors   *telemetry.Counter
}

// New validates the bundle and builds the daemon around it. reg may be
// nil (metrics become no-ops and /metrics serves an empty exposition).
func New(m *model.Models, reg *telemetry.Registry) (*Server, error) {
	if err := m.Check(); err != nil {
		return nil, err
	}
	s := &Server{
		m:        m,
		reg:      reg,
		advises:  reg.Counter("serve_advises_total"),
		predicts: reg.Counter("serve_predictions_total"),
		errors:   reg.Counter("serve_errors_total"),
	}
	s.pool.New = func() any {
		p, err := m.NewPredictor()
		if err != nil {
			// New checked the bundle; a pooled constructor cannot fail
			// after that.
			panic(err)
		}
		return p
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/advise", s.handleAdvise)
	s.mux.HandleFunc("/v1/batch", s.handleBatch)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s, nil
}

// Models returns the bundle the daemon serves.
func (s *Server) Models() *model.Models { return s.m }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// advise resolves one request through a pooled prediction session.
func (s *Server) advise(req *Request) (*Response, error) {
	target, err := metrics.ParseTarget(req.Target)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	var v features.Vector
	var k *kernelir.Kernel
	switch {
	case req.KIR != "" && req.Features != nil:
		return nil, badRequest(`serve: "features" and "kir" are mutually exclusive`)
	case req.KIR != "":
		k, err = kernelir.Assemble(req.KIR)
		if err != nil {
			return nil, badRequest("%v", err)
		}
		v, err = features.Extract(k)
		if err != nil {
			return nil, badRequest("%v", err)
		}
	case req.Features != nil:
		v, err = features.FromMap(req.Features)
		if err != nil {
			return nil, badRequest("%v", err)
		}
	default:
		return nil, badRequest(`serve: request needs either "features" or "kir"`)
	}

	p := s.pool.Get().(*model.Predictor)
	a, err := p.Advise(v, target)
	s.pool.Put(p)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	s.advises.Inc()
	// One advise evaluates four models over the whole frequency table.
	s.predicts.Add(int64(4 * len(s.m.Spec.CoreFreqsMHz)))

	resp := &Response{
		Device:      s.m.Spec.Name,
		Algo:        s.m.Algo,
		Target:      target.String(),
		FreqMHz:     a.FreqMHz,
		BaselineMHz: a.BaselineMHz,
		TimeNs:      a.TimeNs,
		EnergyNanoJ: a.EnergyNanoJ,
		ESPct:       a.ESPct,
		PLPct:       a.PLPct,
	}
	if req.GroundTruth {
		if k == nil {
			return nil, badRequest(`serve: "ground_truth" needs a "kir" kernel`)
		}
		gt, err := sweep.GroundTruth(s.m.Spec, k, req.Items)
		if err != nil {
			return nil, badRequest("%v", err)
		}
		sel, err := gt.Select(target)
		if err != nil {
			return nil, badRequest("%v", err)
		}
		resp.ActualFreqMHz = sel.FreqMHz
	}
	return resp, nil
}

func (s *Server) handleAdvise(w http.ResponseWriter, r *http.Request) {
	if !s.requirePost(w, r) {
		return
	}
	var req Request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, badRequest("serve: decoding request: %v", err))
		return
	}
	resp, err := s.advise(&req)
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if !s.requirePost(w, r) {
		return
	}
	var reqs []Request
	if err := json.NewDecoder(r.Body).Decode(&reqs); err != nil {
		s.fail(w, badRequest("serve: decoding batch: %v", err))
		return
	}
	if len(reqs) == 0 {
		s.fail(w, badRequest("serve: empty batch"))
		return
	}
	if len(reqs) > MaxBatch {
		s.fail(w, badRequest("serve: batch of %d exceeds limit %d", len(reqs), MaxBatch))
		return
	}
	results := make([]BatchResult, len(reqs))
	for i := range reqs {
		resp, err := s.advise(&reqs[i])
		if err != nil {
			s.errors.Inc()
			results[i].Error = err.Error()
			continue
		}
		results[i].Response = resp
	}
	writeJSON(w, http.StatusOK, results)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{
		"status": "ok",
		"device": s.m.Spec.Name,
		"algo":   s.m.Algo,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if s.reg == nil {
		return
	}
	_ = s.reg.WriteText(w)
}

func (s *Server) requirePost(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		s.fail(w, &httpError{code: http.StatusMethodNotAllowed, msg: "serve: POST only"})
		return false
	}
	return true
}

// fail writes the JSON error envelope and counts the failure.
func (s *Server) fail(w http.ResponseWriter, err error) {
	s.errors.Inc()
	code := http.StatusInternalServerError
	if he, ok := err.(*httpError); ok {
		code = he.code
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}
