package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"synergy/internal/features"
	"synergy/internal/metrics"
)

// BenchmarkServePredict is the daemon's in-process hot path: one advice
// resolution — target parse, feature-map decode, pooled predictor,
// whole-curve batch prediction, target search. The preds/s metric
// counts individual model evaluations (four models x every supported
// frequency per advise); BENCH_serve.json records the reference rate.
func BenchmarkServePredict(b *testing.B) {
	s, _ := testServer(b)
	fm := featureMap(b, "black_scholes")
	req := Request{Target: "MIN_ENERGY", Features: fm}
	ctx := context.Background()
	if _, err := s.advise(ctx, &req); err != nil {
		b.Fatal(err)
	}
	perAdvise := 4 * len(s.Models().Spec.CoreFreqsMHz)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.advise(ctx, &req); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	perSec := float64(perAdvise) * float64(b.N) / b.Elapsed().Seconds()
	b.ReportMetric(perSec, "preds/s")
}

// BenchmarkServeCurve isolates the prediction kernel itself: the four
// flattened forests batch-evaluated over the full frequency table
// through reused session scratch (no target search, no JSON).
func BenchmarkServeCurve(b *testing.B) {
	m := testBundle(b)
	p, err := m.NewPredictor()
	if err != nil {
		b.Fatal(err)
	}
	fm := featureMap(b, "black_scholes")
	v, err := features.FromMap(fm)
	if err != nil {
		b.Fatal(err)
	}
	perCurve := 4 * len(m.Spec.CoreFreqsMHz)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Curve(v)
	}
	b.StopTimer()
	perSec := float64(perCurve) * float64(b.N) / b.Elapsed().Seconds()
	b.ReportMetric(perSec, "preds/s")
}

// BenchmarkServeAdvise measures the library advice path (no HTTP), the
// per-request cost a colocated caller pays.
func BenchmarkServeAdvise(b *testing.B) {
	m := testBundle(b)
	p, err := m.NewPredictor()
	if err != nil {
		b.Fatal(err)
	}
	fm := featureMap(b, "black_scholes")
	v, err := features.FromMap(fm)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Advise(v, metrics.MinEnergy); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeHTTP is the end-to-end cost over real HTTP: JSON
// decode, advice, JSON encode, loopback transport.
func BenchmarkServeHTTP(b *testing.B) {
	s, _ := testServer(b)
	ts := httptest.NewServer(s)
	defer ts.Close()
	fm := featureMap(b, "black_scholes")
	body, err := json.Marshal(Request{Target: "MIN_ENERGY", Features: fm})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/v1/advise", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		var r Response
		if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
}
