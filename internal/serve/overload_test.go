package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"synergy/internal/benchsuite"
	"synergy/internal/fault"
	"synergy/internal/resilience"
	"synergy/internal/telemetry"
)

// benchKIR returns a benchmark kernel in .kir wire form.
func benchKIR(t testing.TB, name string) string {
	t.Helper()
	b, err := benchsuite.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return b.Kernel.Disassemble()
}

// boundedServer builds a daemon with a tiny gate so overload behavior
// is reachable without real load.
func boundedServer(t testing.TB, cfg Config) (*Server, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewRegistry()
	s, err := NewWithConfig(testBundle(t), reg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, reg
}

// occupySlots fills n gate slots directly and returns a release func.
func occupySlots(t *testing.T, s *Server, n int) func() {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := s.gate.Acquire(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	return func() {
		for i := 0; i < n; i++ {
			s.gate.Release()
		}
	}
}

// TestExactShedCounts is the admission gate's arithmetic, white-box:
// with both in-flight slots occupied and both queue seats taken, every
// further request is shed with 429 queue-full — exactly as many sheds
// as over-limit requests, no more, no fewer.
func TestExactShedCounts(t *testing.T) {
	s, reg := boundedServer(t, Config{MaxInFlight: 2, MaxQueue: 2})
	fm := featureMap(t, "vec_add")
	release := occupySlots(t, s, 2)

	// Two requests queue behind the occupied gate.
	var wg sync.WaitGroup
	queuedCodes := make([]int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w, _ := postJSON(t, s, "/v1/advise", Request{Target: "MIN_ENERGY", Features: fm})
			queuedCodes[i] = w.Code
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.QueueDepth() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth %d, want 2", s.QueueDepth())
		}
		time.Sleep(time.Millisecond)
	}

	// Gate full, queue full: the next three must shed, immediately.
	for i := 0; i < 3; i++ {
		w, out := postJSON(t, s, "/v1/advise", Request{Target: "MIN_ENERGY", Features: fm})
		if w.Code != http.StatusTooManyRequests {
			t.Fatalf("over-limit request %d: status %d, want 429 (%s)", i, w.Code, out)
		}
		if ra := w.Header().Get("Retry-After"); ra == "" {
			t.Errorf("over-limit request %d: Retry-After header missing", i)
		}
		var e map[string]string
		if err := json.Unmarshal(out, &e); err != nil || e["reason"] != ShedQueueFull {
			t.Errorf("over-limit request %d: envelope %s, want reason %q", i, out, ShedQueueFull)
		}
	}
	if got := reg.Snapshot().CounterValue("serve_shed_total", "reason", ShedQueueFull); got != 3 {
		t.Errorf("serve_shed_total{queue-full} = %d, want 3", got)
	}

	// Releasing the slots lets exactly the two queued requests finish.
	release()
	wg.Wait()
	for i, code := range queuedCodes {
		if code != http.StatusOK {
			t.Errorf("queued request %d: status %d, want 200", i, code)
		}
	}
	snap := reg.Snapshot()
	if got := snap.CounterValue("serve_requests_total", "route", "advise", "outcome", "ok"); got != 2 {
		t.Errorf("ok outcomes = %d, want 2", got)
	}
	if got := snap.CounterValue("serve_requests_total", "route", "advise", "outcome", "shed"); got != 3 {
		t.Errorf("shed outcomes = %d, want 3", got)
	}
	if s.InFlightPeak() > 2 {
		t.Errorf("in-flight peak %d exceeded the gate of 2", s.InFlightPeak())
	}
}

// TestDeadlineShedding covers both deadline sheds: a budget already
// spent on arrival, and a budget that expires while queued.
func TestDeadlineShedding(t *testing.T) {
	s, reg := boundedServer(t, Config{MaxInFlight: 1, MaxQueue: 4})
	fm := featureMap(t, "vec_add")

	post := func(deadline string) (*httptest.ResponseRecorder, []byte) {
		buf, err := json.Marshal(Request{Target: "MIN_ENERGY", Features: fm})
		if err != nil {
			t.Fatal(err)
		}
		req := httptest.NewRequest(http.MethodPost, "/v1/advise", bytes.NewReader(buf))
		req.Header.Set(DeadlineHeader, deadline)
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		out, _ := io.ReadAll(w.Result().Body)
		return w, out
	}

	// Already expired on arrival: shed before touching the queue.
	w, out := post("1ns")
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("pre-expired deadline: status %d, want 429 (%s)", w.Code, out)
	}

	// Expires while queued behind an occupied gate.
	release := occupySlots(t, s, 1)
	start := time.Now()
	w, out = post("50ms")
	waited := time.Since(start)
	release()
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("queued expiry: status %d, want 429 (%s)", w.Code, out)
	}
	if waited > 3*time.Second {
		t.Errorf("queued expiry took %v, want ~50ms", waited)
	}
	var e map[string]string
	if err := json.Unmarshal(out, &e); err != nil || e["reason"] != ShedDeadline {
		t.Errorf("queued expiry envelope %s, want reason %q", out, ShedDeadline)
	}
	if got := reg.Snapshot().CounterValue("serve_shed_total", "reason", ShedDeadline); got != 2 {
		t.Errorf("serve_shed_total{deadline} = %d, want 2", got)
	}

	// A malformed deadline is the client's fault, not a shed.
	w, out = post("soonish")
	if w.Code != http.StatusBadRequest {
		t.Errorf("bad deadline header: status %d, want 400 (%s)", w.Code, out)
	}
}

// TestDrainingSheds: a draining server refuses gated work with 503 and
// reports draining on /readyz, while liveness stays green.
func TestDrainingSheds(t *testing.T) {
	s, reg := boundedServer(t, Config{})
	fm := featureMap(t, "vec_add")
	s.StartDraining()

	w, out := postJSON(t, s, "/v1/advise", Request{Target: "MIN_ENERGY", Features: fm})
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining advise: status %d, want 503 (%s)", w.Code, out)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("draining shed: Retry-After header missing")
	}
	if got := reg.Snapshot().CounterValue("serve_shed_total", "reason", ShedDraining); got != 1 {
		t.Errorf("serve_shed_total{draining} = %d, want 1", got)
	}

	req := httptest.NewRequest(http.MethodGet, "/readyz", nil)
	rw := httptest.NewRecorder()
	s.ServeHTTP(rw, req)
	if rw.Code != http.StatusServiceUnavailable {
		t.Errorf("draining readyz: status %d, want 503", rw.Code)
	}
	var st ReadyState
	if err := json.NewDecoder(rw.Result().Body).Decode(&st); err != nil || st.Status != "draining" {
		t.Errorf("draining readyz body: %+v (err %v)", st, err)
	}

	req = httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rw = httptest.NewRecorder()
	s.ServeHTTP(rw, req)
	if rw.Code != http.StatusOK {
		t.Errorf("draining healthz: status %d, want 200 (liveness is not readiness)", rw.Code)
	}
}

// TestReadyzReady: the happy-path readiness report.
func TestReadyzReady(t *testing.T) {
	s, _ := testServer(t)
	req := httptest.NewRequest(http.MethodGet, "/readyz", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("readyz: status %d", w.Code)
	}
	var st ReadyState
	if err := json.NewDecoder(w.Result().Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Status != "ready" || st.Bundle != s.BundleFingerprint() {
		t.Errorf("readyz body: %+v", st)
	}
}

// TestBodyBounds: over-limit bodies and kernels get 413, and the
// limits do not bite normal requests.
func TestBodyBounds(t *testing.T) {
	s, _ := boundedServer(t, Config{MaxBodyBytes: 2048, MaxKernelBytes: 128})

	big := strings.Repeat("x", 4096)
	req := httptest.NewRequest(http.MethodPost, "/v1/advise", strings.NewReader(`{"target":"`+big+`"}`))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413", w.Code)
	}

	kir := "kernel k {\n" + strings.Repeat("  addf r0, r0, r0\n", 64) + "}\n"
	if len(kir) <= 128 {
		t.Fatalf("test kernel too small: %d bytes", len(kir))
	}
	w2, out := postJSON(t, s, "/v1/advise", Request{Target: "MIN_ENERGY", KIR: kir})
	if w2.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized kir: status %d, want 413 (%s)", w2.Code, out)
	}

	fm := featureMap(t, "vec_add")
	if w3, out := postJSON(t, s, "/v1/advise", Request{Target: "MIN_ENERGY", Features: fm}); w3.Code != http.StatusOK {
		t.Errorf("normal request under bounds: status %d (%s)", w3.Code, out)
	}
}

// TestSlowClientDoesNotWedgeGate: a client that sends headers and then
// never delivers its body must be cut off at its deadline, releasing
// its gate slot. Without the read-deadline bound this pins a slot
// forever and the daemon wedges one slow client at a time.
func TestSlowClientDoesNotWedgeGate(t *testing.T) {
	s, reg := boundedServer(t, Config{MaxInFlight: 1, MaxQueue: 1})
	ts := httptest.NewServer(s)
	defer ts.Close()

	conn, err := net.Dial("tcp", strings.TrimPrefix(ts.URL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Headers promise a body that never comes.
	fmt.Fprintf(conn, "POST /v1/advise HTTP/1.1\r\nHost: x\r\nContent-Type: application/json\r\n"+
		"Content-Length: 512\r\n%s: 300ms\r\n\r\n", DeadlineHeader)

	// The stalled request occupies the single slot...
	deadline := time.Now().Add(5 * time.Second)
	for s.InFlight() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("stalled request never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	// ...and must vacate it at its deadline, not at connection close.
	for s.InFlight() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("stalled request still holds its gate slot well past its 300ms deadline")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The daemon is fully serviceable afterwards.
	fm := featureMap(t, "vec_add")
	body, _ := json.Marshal(Request{Target: "MIN_ENERGY", Features: fm})
	resp, err := http.Post(ts.URL+"/v1/advise", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-stall advise: status %d", resp.StatusCode)
	}
	if got := reg.Snapshot().CounterValue("serve_requests_total", "route", "advise", "outcome", "deadline"); got != 1 {
		t.Errorf("deadline outcomes = %d, want 1 (the stalled request)", got)
	}
}

// TestDegradedSweepBreaker: repeated sweep stalls trip the breaker and
// the daemon falls back to model-only advice instead of failing, with
// the degradation visible in the response, /readyz and the counters.
func TestDegradedSweepBreaker(t *testing.T) {
	// Every sweep stalls well past the sweep budget.
	inj := fault.New(1, fault.Rule{Site: SiteSweep, DelaySec: 0.2})
	s, reg := boundedServer(t, Config{
		SweepTimeout: 20 * time.Millisecond,
		Breaker:      resilience.Config{FailureThreshold: 2, CooldownSec: 3600, HalfOpenSuccesses: 1},
		Fault:        inj,
	})
	kir := benchKIR(t, "vec_add")

	post := func() (*httptest.ResponseRecorder, Response) {
		w, out := postJSON(t, s, "/v1/advise", Request{
			Target: "MIN_EDP", KIR: kir, Items: 1 << 20, GroundTruth: true,
		})
		var resp Response
		if w.Code == http.StatusOK {
			if err := json.Unmarshal(out, &resp); err != nil {
				t.Fatal(err)
			}
		}
		return w, resp
	}

	// Two sweep timeouts: degraded responses, breaker trips open.
	for i := 0; i < 2; i++ {
		w, resp := post()
		if w.Code != http.StatusOK {
			t.Fatalf("degraded advise %d: status %d", i, w.Code)
		}
		if resp.Degraded != "sweep-timeout" || resp.ActualFreqMHz != 0 || resp.FreqMHz == 0 {
			t.Fatalf("degraded advise %d: %+v", i, resp)
		}
	}
	// Breaker now open (cooldown 1h): the sweep is skipped outright.
	w, resp := post()
	if w.Code != http.StatusOK || resp.Degraded != "sweep-breaker-open" {
		t.Fatalf("breaker-open advise: status %d, degraded %q", w.Code, resp.Degraded)
	}

	snap := reg.Snapshot()
	if got := snap.CounterValue("serve_degraded_total", "reason", "sweep-timeout"); got != 2 {
		t.Errorf("serve_degraded_total{sweep-timeout} = %d, want 2", got)
	}
	if got := snap.CounterValue("serve_degraded_total", "reason", "sweep-breaker-open"); got < 1 {
		t.Errorf("serve_degraded_total{sweep-breaker-open} = %d, want >= 1", got)
	}

	// /readyz reports the degradation.
	req := httptest.NewRequest(http.MethodGet, "/readyz", nil)
	rw := httptest.NewRecorder()
	s.ServeHTTP(rw, req)
	var st ReadyState
	if err := json.NewDecoder(rw.Result().Body).Decode(&st); err != nil || st.Status != "degraded" {
		t.Errorf("degraded readyz: %+v (err %v)", st, err)
	}
}

// TestShedProfileAtSaturation drives the daemon at ~2x its gate with a
// slowed-down predict path and checks the overload contract end to
// end: admitted requests finish with bounded latency, the excess is
// shed as 429 (never queued to death), and every request gets exactly
// one terminal outcome. The measured figures feed BENCH_serve.json's
// shed_profile entry.
func TestShedProfileAtSaturation(t *testing.T) {
	if testing.Short() {
		t.Skip("saturation profile skipped in -short")
	}
	// ~3ms of injected service time per request makes a 4-slot gate
	// saturate under 16 concurrent clients.
	inj := fault.New(7, fault.Rule{Site: SitePredict, DelaySec: 0.003})
	const gate, queue = 4, 4
	s, reg := boundedServer(t, Config{MaxInFlight: gate, MaxQueue: queue, Fault: inj})
	ts := httptest.NewServer(s)
	defer ts.Close()

	fm := featureMap(t, "black_scholes")
	body, err := json.Marshal(Request{Target: "MIN_ENERGY", Features: fm})
	if err != nil {
		t.Fatal(err)
	}

	const clients = 2 * (gate + queue) // 2x saturation
	const perClient = 30
	var ok, shed, other atomic.Int64
	lat := make([][]time.Duration, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := &http.Client{}
			for i := 0; i < perClient; i++ {
				t0 := time.Now()
				req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/advise", bytes.NewReader(body))
				req.Header.Set("Content-Type", "application/json")
				req.Header.Set(DeadlineHeader, "2s")
				resp, err := cl.Do(req)
				if err != nil {
					other.Add(1)
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					ok.Add(1)
					lat[c] = append(lat[c], time.Since(t0))
				case http.StatusTooManyRequests:
					shed.Add(1)
				default:
					other.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()

	total := int64(clients * perClient)
	if ok.Load()+shed.Load()+other.Load() != total {
		t.Fatalf("outcomes %d+%d+%d != %d requests", ok.Load(), shed.Load(), other.Load(), total)
	}
	if other.Load() != 0 {
		t.Errorf("%d requests ended in neither answer nor shed", other.Load())
	}
	if ok.Load() == 0 {
		t.Fatal("no requests admitted at 2x saturation")
	}
	if s.InFlightPeak() > gate {
		t.Errorf("in-flight peak %d exceeded the gate of %d", s.InFlightPeak(), gate)
	}
	snap := reg.Snapshot()
	acct := snap.CounterValue("serve_requests_total", "route", "advise", "outcome", "ok") +
		snap.CounterValue("serve_requests_total", "route", "advise", "outcome", "shed") +
		snap.CounterValue("serve_requests_total", "route", "advise", "outcome", "deadline") +
		snap.CounterValue("serve_requests_total", "route", "advise", "outcome", "error")
	if acct != total {
		t.Errorf("serve_requests_total accounts for %d of %d requests", acct, total)
	}

	var all []time.Duration
	for _, l := range lat {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	q := func(p float64) time.Duration { return all[int(p*float64(len(all)-1))] }
	// An admitted request waits at most the queue ahead of it:
	// generously, (queue+1) service times behind a full gate, plus
	// transport. 2s of p99 at ~3ms service would mean unbounded queuing.
	if p99 := q(0.99); p99 > time.Second {
		t.Errorf("admitted p99 %v at 2x saturation; admission control failed to bound latency", p99)
	}
	t.Logf("2x saturation (%d clients, gate %d+%d): %d ok, %d shed; admitted p50 %v p99 %v",
		clients, gate, queue, ok.Load(), shed.Load(), q(0.50), q(0.99))
}
