package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"synergy/internal/hw"
	"synergy/internal/kernelir"
	"synergy/internal/microbench"
	"synergy/internal/model"
	"synergy/internal/telemetry"
)

var (
	altOnce sync.Once
	altM    *model.Models
	altErr  error
)

// altBundle trains a second V100 bundle on a coarser training stride,
// so its fingerprint provably differs from testBundle's while serving
// the same device.
func altBundle(t testing.TB) *model.Models {
	t.Helper()
	altOnce.Do(func() {
		ks, err := microbench.Kernels(microbench.DefaultSet())
		if err != nil {
			altErr = err
			return
		}
		ts, err := model.CollectTraining(hw.V100(), ks, 24)
		if err != nil {
			altErr = err
			return
		}
		altM, altErr = model.Train(hw.V100(), ts, model.AlgoForest)
	})
	if altErr != nil {
		t.Fatal(altErr)
	}
	return altM
}

// bundleJSON serializes a bundle in the SaveModels wire format.
func bundleJSON(t testing.TB, m *model.Models) json.RawMessage {
	t.Helper()
	var buf bytes.Buffer
	if err := model.SaveModels(&buf, m); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestReloadSwapsBundle(t *testing.T) {
	s, reg := testServer(t)
	oldFP := s.BundleFingerprint()
	alt := altBundle(t)
	altFP, err := alt.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if altFP == oldFP {
		t.Fatal("alternate bundle fingerprints equal; the swap would be unobservable")
	}

	w, out := postJSON(t, s, "/v1/reload", ReloadRequest{Bundle: bundleJSON(t, alt)})
	if w.Code != http.StatusOK {
		t.Fatalf("reload: status %d (%s)", w.Code, out)
	}
	var r map[string]string
	if err := json.Unmarshal(out, &r); err != nil || r["bundle"] != altFP {
		t.Fatalf("reload response %s, want bundle %s", out, altFP)
	}
	if s.BundleFingerprint() != altFP {
		t.Fatalf("server fingerprint %s after reload, want %s", s.BundleFingerprint(), altFP)
	}

	// Advice is now answered — and stamped — by the new bundle.
	fm := featureMap(t, "vec_add")
	w2, out2 := postJSON(t, s, "/v1/advise", Request{Target: "MIN_ENERGY", Features: fm})
	if w2.Code != http.StatusOK {
		t.Fatalf("post-reload advise: status %d (%s)", w2.Code, out2)
	}
	var resp Response
	if err := json.Unmarshal(out2, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Bundle != altFP {
		t.Errorf("post-reload advise stamped %s, want %s", resp.Bundle, altFP)
	}
	if got := reg.Snapshot().CounterValue("serve_reloads_total", "result", "ok"); got != 1 {
		t.Errorf("serve_reloads_total{ok} = %d, want 1", got)
	}
}

func TestReloadFromPath(t *testing.T) {
	s, _ := testServer(t)
	alt := altBundle(t)
	path := filepath.Join(t.TempDir(), "bundle.json")
	if err := os.WriteFile(path, bundleJSON(t, alt), 0o600); err != nil {
		t.Fatal(err)
	}
	w, out := postJSON(t, s, "/v1/reload", ReloadRequest{Path: path})
	if w.Code != http.StatusOK {
		t.Fatalf("reload from path: status %d (%s)", w.Code, out)
	}
	altFP, err := alt.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if s.BundleFingerprint() != altFP {
		t.Errorf("fingerprint %s, want %s", s.BundleFingerprint(), altFP)
	}
}

func TestReloadRejections(t *testing.T) {
	s, reg := testServer(t)
	liveFP := s.BundleFingerprint()
	fm := featureMap(t, "vec_add")

	// Train nothing for MI100 — just persist the test bundle under a
	// different-device header by saving a bundle trained elsewhere.
	wrongDev, err := model.CollectTraining(hw.MI100(), mustKernels(t), 48)
	if err != nil {
		t.Fatal(err)
	}
	mi, err := model.Train(hw.MI100(), wrongDev, model.AlgoForest)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		body any
		code int
	}{
		{"garbage bundle", ReloadRequest{Bundle: json.RawMessage(`{"device":"nope"}`)}, http.StatusUnprocessableEntity},
		{"wrong device", ReloadRequest{Bundle: bundleJSON(t, mi)}, http.StatusUnprocessableEntity},
		{"missing path", ReloadRequest{Path: filepath.Join(t.TempDir(), "nope.json")}, http.StatusUnprocessableEntity},
		{"neither input", ReloadRequest{}, http.StatusBadRequest},
		{"both inputs", ReloadRequest{Path: "x", Bundle: json.RawMessage(`{}`)}, http.StatusBadRequest},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			w, out := postJSON(t, s, "/v1/reload", c.body)
			if w.Code != c.code {
				t.Fatalf("status %d, want %d (%s)", w.Code, c.code, out)
			}
		})
	}

	req := httptest.NewRequest(http.MethodGet, "/v1/reload", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET reload: status %d, want 405", w.Code)
	}

	// Every rejection left the live bundle serving, untouched.
	if s.BundleFingerprint() != liveFP {
		t.Fatalf("live bundle changed to %s after rejected reloads", s.BundleFingerprint())
	}
	w2, out2 := postJSON(t, s, "/v1/advise", Request{Target: "MIN_ENERGY", Features: fm})
	if w2.Code != http.StatusOK {
		t.Fatalf("advise after rejected reloads: status %d (%s)", w2.Code, out2)
	}
	snap := reg.Snapshot()
	if got := snap.CounterValue("serve_reloads_total", "result", "rejected"); got != 3 {
		t.Errorf("serve_reloads_total{rejected} = %d, want 3 (400s are not rejections)", got)
	}
	if got := snap.CounterValue("serve_reloads_total", "result", "ok"); got != 0 {
		t.Errorf("serve_reloads_total{ok} = %d, want 0", got)
	}
}

func mustKernels(t testing.TB) []*kernelir.Kernel {
	t.Helper()
	ks, err := microbench.Kernels(microbench.DefaultSet())
	if err != nil {
		t.Fatal(err)
	}
	return ks
}

// TestSelfTestRejectsBrokenCandidate exercises the golden-prediction
// gate directly: a candidate that decodes and Checks but predicts
// garbage must not become the serving bundle.
func TestSelfTestRejectsBrokenCandidate(t *testing.T) {
	live := testBundle(t)
	// Same-device sanity: the alternate bundle passes.
	if err := selfTest(live, altBundle(t)); err != nil {
		t.Fatalf("healthy candidate rejected: %v", err)
	}
	// Cross-device: rejected before any prediction runs.
	wrongDev, err := model.CollectTraining(hw.MI100(), mustKernels(t), 48)
	if err != nil {
		t.Fatal(err)
	}
	mi, err := model.Train(hw.MI100(), wrongDev, model.AlgoForest)
	if err != nil {
		t.Fatal(err)
	}
	if err := selfTest(live, mi); err == nil {
		t.Fatal("cross-device candidate passed the self-test")
	}
}

// TestReloadUnderLoad races advise traffic against repeated A<->B
// reloads. Every successful response must be stamped by exactly one of
// the two bundles (never a mix, never an unknown fingerprint), and
// after the final reload the daemon serves the final bundle. CI
// re-runs this under -race.
func TestReloadUnderLoad(t *testing.T) {
	reg := telemetry.NewRegistry()
	a := testBundle(t)
	b := altBundle(t)
	s, err := New(a, reg)
	if err != nil {
		t.Fatal(err)
	}
	fpA := s.BundleFingerprint()
	fpB, err := b.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	fm := featureMap(t, "black_scholes")
	body, err := json.Marshal(Request{Target: "MIN_ENERGY", Features: fm})
	if err != nil {
		t.Fatal(err)
	}

	const clients = 6
	const perClient = 40
	stop := make(chan struct{})
	var clientWG, reloadWG sync.WaitGroup
	errs := make(chan error, clients+1)

	for c := 0; c < clients; c++ {
		clientWG.Add(1)
		go func() {
			defer clientWG.Done()
			for i := 0; i < perClient; i++ {
				resp, err := http.Post(ts.URL+"/v1/advise", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				var r Response
				derr := json.NewDecoder(resp.Body).Decode(&r)
				resp.Body.Close()
				if derr != nil {
					errs <- derr
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- errStatus(resp.StatusCode)
					return
				}
				if r.Bundle != fpA && r.Bundle != fpB {
					errs <- errBundle(r.Bundle)
					return
				}
			}
		}()
	}
	// The reloader flips bundles as fast as the self-test allows.
	reloadWG.Add(1)
	go func() {
		defer reloadWG.Done()
		next := b
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := s.Reload(next); err != nil {
				errs <- err
				return
			}
			if next == b {
				next = a
			} else {
				next = b
			}
		}
	}()

	clientWG.Wait()
	close(stop)
	reloadWG.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// Post-drain: one final reload to a known bundle, then verify the
	// daemon answers from it.
	if err := s.Reload(b); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/advise", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var r Response
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if r.Bundle != fpB {
		t.Fatalf("post-drain advise stamped %s, want %s", r.Bundle, fpB)
	}
}

type errStatus int

func (e errStatus) Error() string { return "unexpected status " + http.StatusText(int(e)) }

type errBundle string

func (e errBundle) Error() string { return "response stamped by unknown bundle " + string(e) }
