package rapl

import (
	"errors"
	"math"
	"testing"

	"synergy/internal/hw"
)

func newPkg(t *testing.T) (*Package, *hw.Device) {
	t.Helper()
	dev := hw.NewDevice(hw.Xeon8160())
	p, err := New(dev)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Init(); err != nil {
		t.Fatal(err)
	}
	return p, dev
}

func TestNewRejectsGPUs(t *testing.T) {
	t.Parallel()
	if _, err := New(hw.NewDevice(hw.V100())); err == nil {
		t.Fatal("GPU accepted by RAPL")
	}
}

func TestLifecycle(t *testing.T) {
	t.Parallel()
	dev := hw.NewDevice(hw.Xeon8160())
	p, err := New(dev)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.EnergyStatus(); !errors.Is(err, ErrUninitialized) {
		t.Fatalf("pre-init read: %v", err)
	}
	if err := p.Init(); err != nil {
		t.Fatal(err)
	}
	if err := p.Init(); err == nil {
		t.Fatal("double init accepted")
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); !errors.Is(err, ErrUninitialized) {
		t.Fatalf("double close: %v", err)
	}
}

func TestEnergyCounterGrowsAndHasRAPLUnits(t *testing.T) {
	t.Parallel()
	p, dev := newPkg(t)
	before, err := p.EnergyStatus()
	if err != nil {
		t.Fatal(err)
	}
	dev.AdvanceIdle(1.0) // 1 s idle = 35 J
	after, err := p.EnergyStatus()
	if err != nil {
		t.Fatal(err)
	}
	delta := EnergyDelta(before, after)
	want := dev.Spec().IdlePowerW
	if math.Abs(delta-want) > 0.05*want {
		t.Fatalf("counter delta %.2f J over 1 s idle, want ~%.0f", delta, want)
	}
}

func TestEnergyDeltaHandlesWrap(t *testing.T) {
	t.Parallel()
	// Counter wrap: after - before in uint32 arithmetic.
	before := uint32(0xFFFFFF00)
	after := uint32(0x00000100) // wrapped past zero: delta = 0x200 units
	if got, want := EnergyDelta(before, after), 512*EnergyUnitJoules; math.Abs(got-want) > 1e-12 {
		t.Fatalf("wrapped delta = %v, want %v", got, want)
	}
}

func TestGovernorAndFrequencyControl(t *testing.T) {
	t.Parallel()
	p, dev := newPkg(t)
	user := User{Name: "u"}

	// Defaults: ondemand, nothing pinned... (base clock as app clock).
	g, err := p.CurrentGovernor()
	if err != nil || g != GovernorOndemand {
		t.Fatalf("initial governor %q, %v", g, err)
	}
	// Pinning requires userspace governor and root.
	if err := p.SetFrequency(Root, 1500); !errors.Is(err, ErrInvalidArg) {
		t.Fatalf("pin under ondemand: %v", err)
	}
	if err := p.SetGovernor(user, GovernorUserspace); !errors.Is(err, ErrNoPermission) {
		t.Fatalf("unprivileged governor change: %v", err)
	}
	if err := p.SetGovernor(Root, GovernorUserspace); err != nil {
		t.Fatal(err)
	}
	if err := p.SetFrequency(user, 1500); !errors.Is(err, ErrNoPermission) {
		t.Fatalf("unprivileged pin: %v", err)
	}
	if err := p.SetFrequency(Root, 1501); !errors.Is(err, ErrInvalidArg) {
		t.Fatalf("bad P-state: %v", err)
	}
	if err := p.SetFrequency(Root, 1500); err != nil {
		t.Fatal(err)
	}
	if got, _ := p.Frequency(); got != 1500 {
		t.Fatalf("pinned %d, want 1500", got)
	}
	// Back to ondemand restores the default clock.
	if err := p.SetGovernor(Root, GovernorOndemand); err != nil {
		t.Fatal(err)
	}
	if dev.AppClockMHz() != dev.Spec().DefaultCoreMHz {
		t.Fatalf("ondemand left %d MHz", dev.AppClockMHz())
	}
	if err := p.SetGovernor(Root, Governor("performance+")); !errors.Is(err, ErrInvalidArg) {
		t.Fatalf("unknown governor: %v", err)
	}
}

func TestPowerLimitPL1(t *testing.T) {
	t.Parallel()
	p, dev := newPkg(t)
	if err := p.SetPowerLimit(User{Name: "u"}, 100); !errors.Is(err, ErrNoPermission) {
		t.Fatalf("unprivileged PL1: %v", err)
	}
	if err := p.SetPowerLimit(Root, 100); err != nil {
		t.Fatal(err)
	}
	w, err := p.PowerLimit()
	if err != nil || w != 100 {
		t.Fatalf("PL1 = %v, %v", w, err)
	}
	if err := p.SetPowerLimit(Root, 10000); !errors.Is(err, ErrInvalidArg) {
		t.Fatalf("PL1 above TDP: %v", err)
	}
	if err := p.SetPowerLimit(Root, 0); err != nil {
		t.Fatal(err)
	}
	if got := dev.PowerLimit(); got != dev.Spec().TDPWatts {
		t.Fatalf("reset PL1 = %v", got)
	}
}

func TestXeonSpecShape(t *testing.T) {
	t.Parallel()
	s := hw.Xeon8160()
	if s.Vendor != hw.Intel {
		t.Fatal("Xeon is not Intel")
	}
	if len(s.CoreFreqsMHz) != 26 || s.MinCoreMHz() != 1000 || s.MaxCoreMHz() != 3500 {
		t.Fatalf("P-state table wrong: %d states [%d, %d]",
			len(s.CoreFreqsMHz), s.MinCoreMHz(), s.MaxCoreMHz())
	}
	if !s.SupportsCoreFreq(2100) {
		t.Fatal("base clock not in table")
	}
}
