// Package rapl simulates the Intel Running Average Power Limit interface
// (§2.1) together with the cpufreq frequency controls: the 32-bit
// wrapping micro-joule energy-status counter with its 15.3 µJ resolution
// (the classic RAPL gotchas), package power limits (PL1), and P-state
// frequency pinning through a cpufreq-style governor. With this backend
// the SYnergy binding layer covers CPUs as well as both GPU vendors —
// the portability gap the paper calls out.
package rapl

import (
	"errors"
	"fmt"
	"sync"

	"synergy/internal/hw"
)

// EnergyUnitJoules is the RAPL energy-status unit (2^-16 J ≈ 15.3 µJ).
const EnergyUnitJoules = 1.0 / 65536

// counterBits is the width of the energy-status counter; it wraps.
const counterBits = 32

// SamplingPeriodSec is the RAPL counter update interval (~1 ms).
const SamplingPeriodSec = 0.001

// Common errors.
var (
	ErrUninitialized = errors.New("rapl: not initialized")
	ErrNoPermission  = errors.New("rapl: permission denied (MSR access requires root)")
	ErrInvalidArg    = errors.New("rapl: invalid argument")
)

// User identifies callers; MSR writes and cpufreq sysfs writes require
// root.
type User struct {
	Name string
	Root bool
}

// Root is the superuser identity.
var Root = User{Name: "root", Root: true}

// Governor mirrors the cpufreq scaling governors we model.
type Governor string

const (
	// GovernorOndemand lets the kernel pick the P-state (the default).
	GovernorOndemand Governor = "ondemand"
	// GovernorUserspace pins the frequency chosen with SetFrequency.
	GovernorUserspace Governor = "userspace"
)

// Package is a simulated RAPL package domain bound to one CPU device.
type Package struct {
	mu       sync.Mutex
	dev      *hw.Device
	inited   bool
	governor Governor
}

// New creates the RAPL/cpufreq interface for an Intel CPU device.
func New(dev *hw.Device) (*Package, error) {
	if dev.Spec().Vendor != hw.Intel {
		return nil, fmt.Errorf("rapl: device %s is not an Intel CPU", dev.Spec().Name)
	}
	return &Package{dev: dev, governor: GovernorOndemand}, nil
}

// Init opens the MSR interface.
func (p *Package) Init() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.inited {
		return errors.New("rapl: already initialized")
	}
	p.inited = true
	return nil
}

// Close releases the interface.
func (p *Package) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.inited {
		return ErrUninitialized
	}
	p.inited = false
	return nil
}

func (p *Package) checkInit() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.inited {
		return ErrUninitialized
	}
	return nil
}

// EnergyStatus returns the MSR_PKG_ENERGY_STATUS counter: total package
// energy since boot in RAPL units, truncated to 32 bits (it wraps every
// ~65 kJ — callers must compute deltas modulo 2^32).
func (p *Package) EnergyStatus() (uint32, error) {
	if err := p.checkInit(); err != nil {
		return 0, err
	}
	joules := p.dev.SampledEnergyBetween(0, p.dev.Now(), SamplingPeriodSec)
	units := uint64(joules / EnergyUnitJoules)
	return uint32(units & ((1 << counterBits) - 1)), nil
}

// EnergyDelta converts two counter readings (before, after) into joules,
// handling wrap-around.
func EnergyDelta(before, after uint32) float64 {
	return float64(after-before) * EnergyUnitJoules // uint32 arithmetic wraps correctly
}

// PowerLimit returns the PL1 package limit in watts.
func (p *Package) PowerLimit() (float64, error) {
	if err := p.checkInit(); err != nil {
		return 0, err
	}
	return p.dev.PowerLimit(), nil
}

// SetPowerLimit programs PL1 (root only; 0 restores the default TDP).
func (p *Package) SetPowerLimit(u User, watts float64) error {
	if err := p.checkInit(); err != nil {
		return err
	}
	if !u.Root {
		return ErrNoPermission
	}
	if err := p.dev.SetPowerLimit(watts); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidArg, err)
	}
	return nil
}

// SetGovernor selects the cpufreq governor (root only).
func (p *Package) SetGovernor(u User, g Governor) error {
	if err := p.checkInit(); err != nil {
		return err
	}
	if !u.Root {
		return ErrNoPermission
	}
	switch g {
	case GovernorOndemand:
		p.mu.Lock()
		p.governor = g
		p.mu.Unlock()
		p.dev.ResetAppClock()
		return nil
	case GovernorUserspace:
		p.mu.Lock()
		p.governor = g
		p.mu.Unlock()
		return nil
	default:
		return fmt.Errorf("%w: unknown governor %q", ErrInvalidArg, g)
	}
}

// CurrentGovernor returns the active governor.
func (p *Package) CurrentGovernor() (Governor, error) {
	if err := p.checkInit(); err != nil {
		return "", err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.governor, nil
}

// SetFrequency pins the package frequency (requires the userspace
// governor; root only).
func (p *Package) SetFrequency(u User, mhz int) error {
	if err := p.checkInit(); err != nil {
		return err
	}
	if !u.Root {
		return ErrNoPermission
	}
	p.mu.Lock()
	gov := p.governor
	p.mu.Unlock()
	if gov != GovernorUserspace {
		return fmt.Errorf("%w: frequency pinning requires the userspace governor", ErrInvalidArg)
	}
	if !p.dev.Spec().SupportsCoreFreq(mhz) {
		return fmt.Errorf("%w: %d MHz not a supported P-state", ErrInvalidArg, mhz)
	}
	return p.dev.SetAppClock(mhz)
}

// Frequency reports the pinned frequency (0 under ondemand).
func (p *Package) Frequency() (int, error) {
	if err := p.checkInit(); err != nil {
		return 0, err
	}
	return p.dev.AppClockMHz(), nil
}

// PowerWatts returns the current package power (counter-derived, on the
// RAPL update grid).
func (p *Package) PowerWatts() (float64, error) {
	if err := p.checkInit(); err != nil {
		return 0, err
	}
	now := p.dev.Now()
	tick := float64(int64(now/SamplingPeriodSec)) * SamplingPeriodSec
	return p.dev.PowerAt(tick), nil
}

// SampledEnergyBetween integrates the sampled power trace over a window.
func (p *Package) SampledEnergyBetween(t0, t1 float64) (float64, error) {
	if err := p.checkInit(); err != nil {
		return 0, err
	}
	return p.dev.SampledEnergyBetween(t0, t1, SamplingPeriodSec), nil
}
