package report

import (
	"fmt"
	"strings"

	"synergy/internal/apps"
	"synergy/internal/hw"
	"synergy/internal/metrics"
	"synergy/internal/microbench"
	"synergy/internal/model"
	"synergy/internal/mpi"
	"synergy/internal/sweep"
)

// Fig10Targets are the per-kernel energy targets plotted in Fig. 10
// (plus the implicit default-frequency baseline).
var Fig10Targets = []metrics.Target{
	metrics.MinEDP, metrics.MinED2P,
	metrics.ES(25), metrics.ES(50), metrics.ES(75),
	metrics.PL(25), metrics.PL(50), metrics.PL(75),
}

// Fig10Point is one (configuration, scale) measurement.
type Fig10Point struct {
	App     string
	Target  string // "default" for the baseline
	GPUs    int
	TimeSec float64
	EnergyJ float64
	// SavingPct is the energy saving vs the same-scale baseline.
	SavingPct float64
}

// Fig10Config parameterises the scaling study.
type Fig10Config struct {
	Spec        *hw.Spec
	NodeCounts  []int // e.g. {1, 2, 4, 8, 16}
	GPUsPerNode int
	LocalNx     int
	LocalNy     int
	Steps       int
	StateRows   int
	TrainStride int
	// FunctionalCap bounds interpreted work-items per launch.
	FunctionalCap int
}

// DefaultFig10Config mirrors the paper's setup: up to 16 nodes × 4 V100
// GPUs, weak scaling.
func DefaultFig10Config() Fig10Config {
	return Fig10Config{
		Spec:          hw.V100(),
		NodeCounts:    []int{1, 2, 4, 8, 16},
		GPUsPerNode:   4,
		LocalNx:       16384,
		LocalNy:       16384,
		Steps:         10,
		StateRows:     8,
		TrainStride:   8,
		FunctionalCap: 512,
	}
}

// BuildFig10 runs the weak-scaling energy study for both applications.
func BuildFig10(cfg Fig10Config) ([]Fig10Point, error) {
	ks, err := microbench.Kernels(microbench.DefaultSet())
	if err != nil {
		return nil, err
	}
	adv, err := model.DefaultAdvisor(cfg.Spec, ks, cfg.TrainStride)
	if err != nil {
		return nil, err
	}
	items := cfg.LocalNx * cfg.LocalNy

	var out []Fig10Point
	for _, app := range []*apps.App{apps.NewCloverLeaf(), apps.NewMiniWeather()} {
		// Plans are per-kernel, independent of scale — and independent of
		// each other, so they are built concurrently on the sweep pool
		// (model prediction is read-only after training).
		byTarget := make([]apps.FreqPlan, len(Fig10Targets))
		err := sweep.ForEach(len(Fig10Targets), func(i int) error {
			plan, err := apps.PlanFromAdvisor(app, adv, items, Fig10Targets[i])
			if err != nil {
				return err
			}
			byTarget[i] = plan
			return nil
		})
		if err != nil {
			return nil, err
		}
		plans := map[string]apps.FreqPlan{}
		for i, tgt := range Fig10Targets {
			plans[tgt.String()] = byTarget[i]
		}
		for _, nodes := range cfg.NodeCounts {
			rc := apps.RunConfig{
				Spec:          cfg.Spec,
				Nodes:         nodes,
				GPUsPerNode:   cfg.GPUsPerNode,
				LocalNx:       cfg.LocalNx,
				LocalNy:       cfg.LocalNy,
				Steps:         cfg.Steps,
				StateRows:     cfg.StateRows,
				FunctionalCap: cfg.FunctionalCap,
				Net:           mpi.EDRFabric(),
			}
			base, err := apps.Run(app, rc)
			if err != nil {
				return nil, err
			}
			out = append(out, Fig10Point{
				App: app.Name, Target: "default", GPUs: base.Ranks,
				TimeSec: base.TimeSec, EnergyJ: base.EnergyJ,
			})
			for _, tgt := range Fig10Targets {
				rc.Plan = plans[tgt.String()]
				res, err := apps.Run(app, rc)
				if err != nil {
					return nil, err
				}
				out = append(out, Fig10Point{
					App: app.Name, Target: tgt.String(), GPUs: res.Ranks,
					TimeSec: res.TimeSec, EnergyJ: res.EnergyJ,
					SavingPct: 100 * (1 - res.EnergyJ/base.EnergyJ),
				})
			}
		}
	}
	return out, nil
}

// RenderFig10 prints the scaling series.
func RenderFig10(points []Fig10Point) string {
	var b strings.Builder
	b.WriteString("Figure 10: real-world applications energy scaling (weak scaling)\n")
	t := &table{header: []string{"App", "Target", "GPUs", "Time(s)", "Energy(J)", "Saving%"}}
	for _, p := range points {
		saving := "-"
		if p.Target != "default" {
			saving = fmt.Sprintf("%.1f", p.SavingPct)
		}
		t.addRow(p.App, p.Target, fmt.Sprintf("%d", p.GPUs),
			fmt.Sprintf("%.4f", p.TimeSec), fmt.Sprintf("%.1f", p.EnergyJ), saving)
	}
	b.WriteString(t.String())
	return b.String()
}
