// Package report regenerates the paper's tables and figures from the
// reproduction: every experiment of §8 (plus the Fig. 1–5 motivation
// material) has a builder returning structured data and a text renderer
// that prints the same rows/series the paper reports. The benchmark
// harness (bench_test.go) and the synergy-report tool both build on it.
package report

import (
	"fmt"
	"sort"
	"strings"

	"synergy/internal/benchsuite"
	"synergy/internal/features"
	"synergy/internal/hw"
	"synergy/internal/kernelir/analysis"
	"synergy/internal/metrics"
	"synergy/internal/microbench"
	"synergy/internal/model"
	"synergy/internal/sweep"
)

// table is a minimal text-table writer.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) addRow(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Fig1 describes the available frequencies of the device catalog (the
// paper's three characterised devices plus the fleet-model additions).
type Fig1 struct {
	Devices []Fig1Device
}

// Fig1Device is one device's frequency availability.
type Fig1Device struct {
	Name           string
	MemFreqMHz     int
	CoreConfigs    int
	MinMHz, MaxMHz int
	DefaultMHz     int // 0: auto (no default configuration)
}

// BuildFig1 gathers the Fig. 1 data. The rows are derived from the full
// hw catalog rather than a hard-coded device list, so a newly added
// spec shows up without touching the report layer.
func BuildFig1() Fig1 {
	var f Fig1
	for _, name := range hw.BuiltinNames() {
		s, err := hw.SpecByName(name)
		if err != nil {
			panic(err)
		}
		f.Devices = append(f.Devices, Fig1Device{
			Name:        s.Name,
			MemFreqMHz:  s.MemFreqMHz,
			CoreConfigs: len(s.CoreFreqsMHz),
			MinMHz:      s.MinCoreMHz(),
			MaxMHz:      s.MaxCoreMHz(),
			DefaultMHz:  s.DefaultCoreMHz,
		})
	}
	return f
}

// Render prints the Fig. 1 table.
func (f Fig1) Render() string {
	t := &table{header: []string{"Device", "MemMHz", "CoreConfigs", "CoreMin", "CoreMax", "Default"}}
	for _, d := range f.Devices {
		def := "auto"
		if d.DefaultMHz != 0 {
			def = fmt.Sprintf("%d", d.DefaultMHz)
		}
		t.addRow(d.Name, fmt.Sprintf("%d", d.MemFreqMHz), fmt.Sprintf("%d", d.CoreConfigs),
			fmt.Sprintf("%d", d.MinMHz), fmt.Sprintf("%d", d.MaxMHz), def)
	}
	return "Figure 1: available frequencies\n" + t.String()
}

// Characterization is one kernel's frequency sweep in the paper's
// normalised coordinates (Figs. 2, 7, 8).
type Characterization struct {
	Device    string
	Benchmark string
	Points    []metrics.CharPoint
	Front     []metrics.CharPoint
	// BestSavingPct is the deepest energy saving on the sweep, and
	// LossAtBestPct the performance loss there.
	BestSavingPct, LossAtBestPct float64
	// Roofline is the static analyzer's compute/memory classification of
	// the kernel on this device; it predicts the sweep's shape (memory-
	// bound kernels have deep, cheap savings above the knee).
	Roofline *analysis.Roofline
}

// BuildCharacterization sweeps one suite benchmark on a device through
// the shared sweep engine.
func BuildCharacterization(spec *hw.Spec, benchName string) (*Characterization, error) {
	b, err := benchsuite.ByName(benchName)
	if err != nil {
		return nil, err
	}
	sw, err := sweep.GroundTruth(spec, b.Kernel, b.CharItems)
	if err != nil {
		return nil, err
	}
	char := sw.Characterize()
	frontPts := sw.ParetoFront()
	base := sw.BaselinePoint()
	var front []metrics.CharPoint
	for _, p := range frontPts {
		front = append(front, metrics.CharPoint{
			FreqMHz:    p.FreqMHz,
			Speedup:    base.TimeSec / p.TimeSec,
			NormEnergy: p.EnergyJ / base.EnergyJ,
		})
	}
	minE, err := sw.Select(metrics.MinEnergy)
	if err != nil {
		return nil, err
	}
	rf, err := analysis.StaticRoofline(b.Kernel, spec)
	if err != nil {
		return nil, err
	}
	return &Characterization{
		Device:        spec.Name,
		Benchmark:     benchName,
		Points:        char,
		Front:         front,
		BestSavingPct: sw.EnergySavingPct(minE),
		LossAtBestPct: sw.PerfLossPct(minE),
		Roofline:      rf,
	}, nil
}

// Render prints a characterisation summary with a sampled series.
func (c *Characterization) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s on %s: max saving %.1f%% (perf loss %.1f%%), Pareto front %d points\n",
		c.Benchmark, c.Device, c.BestSavingPct, c.LossAtBestPct, len(c.Front))
	if c.Roofline != nil {
		fmt.Fprintf(&b, "  static roofline: %s (alpha %.3f, knee %d MHz)\n",
			c.Roofline.Label, c.Roofline.Alpha, c.Roofline.KneeMHz)
	}
	t := &table{header: []string{"FreqMHz", "Speedup", "NormEnergy"}}
	stride := len(c.Points)/16 + 1
	for i := 0; i < len(c.Points); i += stride {
		p := c.Points[i]
		t.addRow(fmt.Sprintf("%d", p.FreqMHz), fmt.Sprintf("%.3f", p.Speedup), fmt.Sprintf("%.3f", p.NormEnergy))
	}
	b.WriteString(t.String())
	return b.String()
}

// Fig2Benchmarks and Fig7Benchmarks name the kernels the paper plots.
var (
	Fig2Benchmarks = []string{"lin_reg_coeff", "median"}
	Fig7Benchmarks = []string{"matmul", "sobel3", "median", "lin_reg_coeff"}
)

// BuildFig2 characterises the two motivation kernels on the V100.
func BuildFig2() ([]*Characterization, error) {
	return buildChars(hw.V100(), Fig2Benchmarks)
}

// BuildFig7 characterises the four selected kernels on the V100.
func BuildFig7() ([]*Characterization, error) {
	return buildChars(hw.V100(), Fig7Benchmarks)
}

// BuildFig8 characterises the four selected kernels on the MI100.
func BuildFig8() ([]*Characterization, error) {
	return buildChars(hw.MI100(), Fig7Benchmarks)
}

func buildChars(spec *hw.Spec, names []string) ([]*Characterization, error) {
	out := make([]*Characterization, len(names))
	err := sweep.ForEach(len(names), func(i int) error {
		c, err := BuildCharacterization(spec, names[i])
		if err != nil {
			return err
		}
		out[i] = c
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Fig4 is the Black-Scholes EDP/ED2P study.
type Fig4 struct {
	Device string
	// Series rows: frequency, EDP, ED2P (normalised to their minima).
	Freqs      []int
	EDP, ED2P  []float64
	MinEDPMHz  int
	MinED2PMHz int
	MaxPerfMHz int
	MinEnerMHz int
}

// BuildFig4 sweeps black_scholes and locates the product minima.
func BuildFig4() (*Fig4, error) {
	spec := hw.V100()
	b, err := benchsuite.ByName("black_scholes")
	if err != nil {
		return nil, err
	}
	sw, err := sweep.GroundTruth(spec, b.Kernel, b.CharItems)
	if err != nil {
		return nil, err
	}
	f := &Fig4{Device: spec.Name}
	for _, p := range sw.Points {
		f.Freqs = append(f.Freqs, p.FreqMHz)
		f.EDP = append(f.EDP, p.EDP())
		f.ED2P = append(f.ED2P, p.ED2P())
	}
	edp, err := sw.Select(metrics.MinEDP)
	if err != nil {
		return nil, err
	}
	ed2p, err := sw.Select(metrics.MinED2P)
	if err != nil {
		return nil, err
	}
	mp, err := sw.Select(metrics.MaxPerf)
	if err != nil {
		return nil, err
	}
	me, err := sw.Select(metrics.MinEnergy)
	if err != nil {
		return nil, err
	}
	f.MinEDPMHz, f.MinED2PMHz = edp.FreqMHz, ed2p.FreqMHz
	f.MaxPerfMHz, f.MinEnerMHz = mp.FreqMHz, me.FreqMHz
	return f, nil
}

// Render prints the Fig. 4 summary.
func (f *Fig4) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: Black-Scholes on %s\n", f.Device)
	fmt.Fprintf(&b, "  MIN_EDP at %d MHz, MIN_ED2P at %d MHz (energy optimum %d, perf optimum %d)\n",
		f.MinEDPMHz, f.MinED2PMHz, f.MinEnerMHz, f.MaxPerfMHz)
	t := &table{header: []string{"FreqMHz", "EDP", "ED2P"}}
	stride := len(f.Freqs)/16 + 1
	for i := 0; i < len(f.Freqs); i += stride {
		t.addRow(fmt.Sprintf("%d", f.Freqs[i]), fmt.Sprintf("%.4g", f.EDP[i]), fmt.Sprintf("%.4g", f.ED2P[i]))
	}
	b.WriteString(t.String())
	return b.String()
}

// Fig5 reports the ES_x / PL_x selections for Black-Scholes.
type Fig5 struct {
	Device string
	Rows   []Fig5Row
}

// Fig5Row is one metric's selected configuration.
type Fig5Row struct {
	Target    metrics.Target
	FreqMHz   int
	SavingPct float64 // energy saving vs default
	LossPct   float64 // time loss vs default
}

// BuildFig5 computes the ES/PL selections of Fig. 5.
func BuildFig5() (*Fig5, error) {
	spec := hw.V100()
	b, err := benchsuite.ByName("black_scholes")
	if err != nil {
		return nil, err
	}
	sw, err := sweep.GroundTruth(spec, b.Kernel, b.CharItems)
	if err != nil {
		return nil, err
	}
	f := &Fig5{Device: spec.Name}
	targets := []metrics.Target{
		metrics.ES(25), metrics.ES(50), metrics.ES(75),
		metrics.PL(25), metrics.PL(50), metrics.PL(75),
	}
	for _, tgt := range targets {
		p, err := sw.Select(tgt)
		if err != nil {
			return nil, err
		}
		f.Rows = append(f.Rows, Fig5Row{
			Target:    tgt,
			FreqMHz:   p.FreqMHz,
			SavingPct: sw.EnergySavingPct(p),
			LossPct:   sw.PerfLossPct(p),
		})
	}
	return f, nil
}

// Render prints the Fig. 5 table.
func (f *Fig5) Render() string {
	t := &table{header: []string{"Metric", "FreqMHz", "EnergySaving%", "PerfLoss%"}}
	for _, r := range f.Rows {
		t.addRow(r.Target.String(), fmt.Sprintf("%d", r.FreqMHz),
			fmt.Sprintf("%.1f", r.SavingPct), fmt.Sprintf("%.1f", r.LossPct))
	}
	return fmt.Sprintf("Figure 5: energy metrics for Black-Scholes on %s\n%s", f.Device, t.String())
}

// Table1 lists the static features of the 23 benchmarks.
type Table1 struct {
	Rows []Table1Row
}

// Table1Row is one benchmark's feature vector.
type Table1Row struct {
	Benchmark string
	Features  features.Vector
}

// BuildTable1 extracts every suite benchmark's features.
func BuildTable1() (*Table1, error) {
	var t1 Table1
	for _, b := range benchsuite.All() {
		v, err := features.Extract(b.Kernel)
		if err != nil {
			return nil, err
		}
		t1.Rows = append(t1.Rows, Table1Row{Benchmark: b.Name, Features: v})
	}
	return &t1, nil
}

// Render prints the feature table.
func (t1 *Table1) Render() string {
	header := append([]string{"Benchmark"}, features.Names...)
	t := &table{header: header}
	for _, r := range t1.Rows {
		cells := []string{r.Benchmark}
		for _, v := range r.Features.Slice() {
			cells = append(cells, fmt.Sprintf("%g", v))
		}
		t.addRow(cells...)
	}
	return "Table 1: static code features (per work-item)\n" + t.String()
}

// ModelEvaluation bundles the Fig. 9 / Table 2 outputs.
type ModelEvaluation struct {
	Device string
	Rows   []model.Table2Row
	Raw    []model.PredictionError
}

// BuildModelEvaluation trains on the micro-benchmarks and evaluates the
// frequency predictions over the 23-benchmark suite (§8.3). freqStride
// subsamples the training sweep (1 = full table).
func BuildModelEvaluation(spec *hw.Spec, freqStride int) (*ModelEvaluation, error) {
	ks, err := microbench.Kernels(microbench.DefaultSet())
	if err != nil {
		return nil, err
	}
	ts, err := model.CollectTraining(spec, ks, freqStride)
	if err != nil {
		return nil, err
	}
	var cases []model.BenchCase
	for _, b := range benchsuite.All() {
		cases = append(cases, model.BenchCase{Name: b.Name, Kernel: b.Kernel, Items: b.CharItems})
	}
	rows, raw, err := model.BuildTable2(spec, ts, cases, metrics.StandardTargets)
	if err != nil {
		return nil, err
	}
	return &ModelEvaluation{Device: spec.Name, Rows: rows, Raw: raw}, nil
}

// RenderTable2 prints the Table-2 layout (RMSE/MAPE per algorithm, best
// algorithm per objective).
func (m *ModelEvaluation) RenderTable2() string {
	header := []string{"Objective"}
	for _, a := range model.AllAlgos {
		header = append(header, a+" RMSE", a+" MAPE")
	}
	header = append(header, "Best")
	t := &table{header: header}
	for _, row := range m.Rows {
		cells := []string{row.Target.String()}
		for _, a := range model.AllAlgos {
			c, ok := row.Cells[a]
			if !ok || !c.Computed {
				cells = append(cells, "-", "-")
				continue
			}
			mape := fmt.Sprintf("%.4f", c.MAPE)
			if c.Skipped > 0 {
				// Zero-valued actual objectives have no percentage error;
				// surface how many were excluded from the mean.
				mape += fmt.Sprintf(" (skip %d)", c.Skipped)
			}
			cells = append(cells, fmt.Sprintf("%.4g", c.RMSE), mape)
		}
		cells = append(cells, row.Best)
		t.addRow(cells...)
	}
	return fmt.Sprintf("Table 2: frequency-prediction error on %s\n%s", m.Device, t.String())
}

// RenderFig9 prints the per-benchmark APEs for one target.
func (m *ModelEvaluation) RenderFig9(target metrics.Target) string {
	byBench := map[string]map[string]float64{}
	var algos []string
	seen := map[string]bool{}
	for _, e := range m.Raw {
		if e.Target != target {
			continue
		}
		if byBench[e.Bench] == nil {
			byBench[e.Bench] = map[string]float64{}
		}
		byBench[e.Bench][e.Algo] = e.APE
		if !seen[e.Algo] {
			seen[e.Algo] = true
			algos = append(algos, e.Algo)
		}
	}
	var benches []string
	for b := range byBench {
		benches = append(benches, b)
	}
	sort.Strings(benches)
	t := &table{header: append([]string{"Benchmark"}, algos...)}
	for _, b := range benches {
		cells := []string{b}
		for _, a := range algos {
			cells = append(cells, fmt.Sprintf("%.4f", byBench[b][a]))
		}
		t.addRow(cells...)
	}
	return fmt.Sprintf("Figure 9 (%s): APE of predicted-optimal frequency\n%s", target, t.String())
}
