package report

import (
	"strings"
	"testing"

	"synergy/internal/apps"
	"synergy/internal/hw"
	"synergy/internal/microbench"
	"synergy/internal/model"
)

func TestAblationFineGrainedCompetitive(t *testing.T) {
	spec := hw.V100()
	ks, err := microbench.Kernels(microbench.DefaultSet())
	if err != nil {
		t.Fatal(err)
	}
	adv, err := model.DefaultAdvisor(spec, ks, 16)
	if err != nil {
		t.Fatal(err)
	}
	a, err := BuildAblation(AblationConfig{
		Spec: spec, App: apps.NewCloverLeaf(), Advisor: adv,
		LocalNx: 16384, LocalNy: 16384, Steps: 6,
		StateRows: 8, FunctionalCap: 64, FreqStride: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Both tuned configurations must beat the default on EDP.
	if a.CoarseEDP() >= a.BaselineEDP() {
		t.Errorf("coarse tuning did not improve EDP: %.3f vs %.3f", a.CoarseEDP(), a.BaselineEDP())
	}
	if a.FineEDP() >= a.BaselineEDP() {
		t.Errorf("fine tuning did not improve EDP: %.3f vs %.3f", a.FineEDP(), a.BaselineEDP())
	}
	// The oracle fine-grained plan (no model error) must be competitive
	// with the exhaustively-searched single frequency — the §2.2
	// premise that per-kernel tuning does not lose to the best global
	// setting. A small tolerance covers clock-switch overheads.
	if a.FineOracleEDP() > a.CoarseEDP()*1.03 {
		t.Errorf("oracle fine-grained EDP %.4f worse than coarse %.4f",
			a.FineOracleEDP(), a.CoarseEDP())
	}
	// The model-driven plan additionally carries prediction error but
	// must stay within a reasonable band of the oracle.
	if a.FineEDP() > a.FineOracleEDP()*1.25 {
		t.Errorf("model-driven fine EDP %.4f far from oracle %.4f", a.FineEDP(), a.FineOracleEDP())
	}
	// The plan must actually be fine-grained (multiple frequencies).
	if a.DistinctPlannedFrequencies < 2 {
		t.Errorf("plan uses %d distinct frequencies; expected per-kernel diversity",
			a.DistinctPlannedFrequencies)
	}
	if !strings.Contains(a.Render(), "coarse@") {
		t.Error("render incomplete")
	}
}
