package report

import (
	"fmt"
	"strings"

	"synergy/internal/apps"
	"synergy/internal/core"
	"synergy/internal/hw"
	"synergy/internal/metrics"
	"synergy/internal/mpi"
	"synergy/internal/sweep"
)

// Ablation compares the paper's central design choice (§2.2): coarse-
// grained tuning (one frequency for every kernel of the application,
// the best a job-level tool can do) against SYnergy's fine-grained
// per-kernel tuning, both targeting MIN_EDP.
type Ablation struct {
	App string
	// Baseline runs at default clocks.
	BaselineTime, BaselineEnergy float64
	// Coarse is the best single-frequency configuration (exhaustive
	// search over the frequency table).
	CoarseFreqMHz            int
	CoarseTime, CoarseEnergy float64
	// Fine is the per-kernel plan from the trained models.
	FineTime, FineEnergy       float64
	DistinctPlannedFrequencies int
	// FineOracle is the per-kernel plan built from ground-truth sweeps
	// (no model error): it isolates the granularity question from the
	// prediction question.
	FineOracleTime, FineOracleEnergy float64
}

// EDP helpers.
func (a *Ablation) BaselineEDP() float64 { return a.BaselineTime * a.BaselineEnergy }

// CoarseEDP is energy × time of the best single frequency.
func (a *Ablation) CoarseEDP() float64 { return a.CoarseTime * a.CoarseEnergy }

// FineEDP is energy × time of the per-kernel plan.
func (a *Ablation) FineEDP() float64 { return a.FineTime * a.FineEnergy }

// FineOracleEDP is energy × time of the ground-truth per-kernel plan.
func (a *Ablation) FineOracleEDP() float64 { return a.FineOracleTime * a.FineOracleEnergy }

// AblationConfig parameterises the study.
type AblationConfig struct {
	Spec                    *hw.Spec
	App                     *apps.App
	Advisor                 core.FrequencyAdvisor
	LocalNx, LocalNy, Steps int
	StateRows               int
	FunctionalCap           int
	// FreqStride subsamples the coarse-grained exhaustive search.
	FreqStride int
}

// BuildAblation runs baseline, the coarse-grained search and the
// fine-grained plan.
func BuildAblation(cfg AblationConfig) (*Ablation, error) {
	if cfg.FreqStride < 1 {
		cfg.FreqStride = 8
	}
	rc := apps.RunConfig{
		Spec: cfg.Spec, Nodes: 1, GPUsPerNode: 1,
		LocalNx: cfg.LocalNx, LocalNy: cfg.LocalNy, Steps: cfg.Steps,
		StateRows: cfg.StateRows, FunctionalCap: cfg.FunctionalCap,
		Net: mpi.EDRFabric(),
	}
	base, err := apps.Run(cfg.App, rc)
	if err != nil {
		return nil, err
	}
	out := &Ablation{
		App:            cfg.App.Name,
		BaselineTime:   base.TimeSec,
		BaselineEnergy: base.EnergyJ,
	}

	// Coarse-grained: exhaustive single-frequency search for min EDP.
	bestEDP := 0.0
	for i := 0; i < len(cfg.Spec.CoreFreqsMHz); i += cfg.FreqStride {
		f := cfg.Spec.CoreFreqsMHz[i]
		plan := apps.FreqPlan{}
		for _, k := range cfg.App.Kernels {
			plan[k.Name] = f
		}
		rc.Plan = plan
		res, err := apps.Run(cfg.App, rc)
		if err != nil {
			return nil, err
		}
		edp := res.TimeSec * res.EnergyJ
		if out.CoarseFreqMHz == 0 || edp < bestEDP {
			bestEDP = edp
			out.CoarseFreqMHz = f
			out.CoarseTime = res.TimeSec
			out.CoarseEnergy = res.EnergyJ
		}
	}

	// Fine-grained: the model-driven per-kernel MIN_EDP plan.
	plan, err := apps.PlanFromAdvisor(cfg.App, cfg.Advisor, cfg.LocalNx*cfg.LocalNy, metrics.MinEDP)
	if err != nil {
		return nil, err
	}
	distinct := map[int]bool{}
	for _, f := range plan {
		distinct[f] = true
	}
	out.DistinctPlannedFrequencies = len(distinct)
	rc.Plan = plan
	res, err := apps.Run(cfg.App, rc)
	if err != nil {
		return nil, err
	}
	out.FineTime = res.TimeSec
	out.FineEnergy = res.EnergyJ

	// Oracle fine-grained: each kernel at its ground-truth MIN_EDP
	// frequency (no model error). The sweeps run concurrently through
	// the shared engine and stay memoized for other consumers.
	oracle := apps.FreqPlan{}
	oracleFreqs := make([]int, len(cfg.App.Kernels))
	err = sweep.ForEach(len(cfg.App.Kernels), func(i int) error {
		gt, err := sweep.GroundTruth(cfg.Spec, cfg.App.Kernels[i], int64(cfg.LocalNx*cfg.LocalNy))
		if err != nil {
			return err
		}
		p, err := gt.Select(metrics.MinEDP)
		if err != nil {
			return err
		}
		oracleFreqs[i] = p.FreqMHz
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, k := range cfg.App.Kernels {
		oracle[k.Name] = oracleFreqs[i]
	}
	rc.Plan = oracle
	res, err = apps.Run(cfg.App, rc)
	if err != nil {
		return nil, err
	}
	out.FineOracleTime = res.TimeSec
	out.FineOracleEnergy = res.EnergyJ
	return out, nil
}

// Render prints the comparison.
func (a *Ablation) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation (%s, MIN_EDP): coarse-grained vs fine-grained tuning\n", a.App)
	t := &table{header: []string{"Config", "Time(s)", "Energy(J)", "EDP", "vsBaseline"}}
	row := func(name string, tm, e float64, extra string) {
		t.addRow(name, fmt.Sprintf("%.4f", tm), fmt.Sprintf("%.2f", e),
			fmt.Sprintf("%.3f", tm*e), extra)
	}
	row("default", a.BaselineTime, a.BaselineEnergy, "-")
	row(fmt.Sprintf("coarse@%dMHz", a.CoarseFreqMHz), a.CoarseTime, a.CoarseEnergy,
		fmt.Sprintf("%.1f%% EDP", 100*(1-a.CoarseEDP()/a.BaselineEDP())))
	row(fmt.Sprintf("fine(%d freqs)", a.DistinctPlannedFrequencies), a.FineTime, a.FineEnergy,
		fmt.Sprintf("%.1f%% EDP", 100*(1-a.FineEDP()/a.BaselineEDP())))
	row("fine(oracle)", a.FineOracleTime, a.FineOracleEnergy,
		fmt.Sprintf("%.1f%% EDP", 100*(1-a.FineOracleEDP()/a.BaselineEDP())))
	b.WriteString(t.String())
	return b.String()
}
