package report

import (
	"fmt"
	"strings"

	"synergy/internal/benchsuite"
	"synergy/internal/hw"
	"synergy/internal/kernelir/analysis"
	"synergy/internal/metrics"
	"synergy/internal/placement"
	"synergy/internal/sweep"
)

// FleetRow is one (benchmark, target) joint placement on a fleet.
type FleetRow struct {
	Benchmark string  `json:"benchmark"`
	Target    string  `json:"target"`
	Device    string  `json:"device"`
	FreqMHz   int     `json:"freq_mhz"`
	ESPct     float64 `json:"es_pct"`
	PLPct     float64 `json:"pl_pct"`
	// FleetPowerW is the fleet draw of the chosen configuration (hosting
	// board plus everyone else's idle), the quantity the budget caps.
	FleetPowerW float64 `json:"fleet_power_w"`
	// Roofline is the static compute/memory classification of the
	// benchmark on the chosen device.
	Roofline string `json:"roofline"`
}

// FleetReport is the fleet-level report axis: for every suite benchmark
// and requested target, the energy-optimal (device, frequency) choice
// under the fleet's power budget, with the fleet-relative ES/PL
// figures.
type FleetReport struct {
	Fleet   string     `json:"fleet"`
	Budget  string     `json:"budget"`
	Devices []string   `json:"devices"`
	Rows    []FleetRow `json:"rows"`
}

// BuildFleetReport runs the joint placement search for every suite
// benchmark × target on the shared sweep engine, sweeping benchmarks in
// parallel.
func BuildFleetReport(fleet *hw.Fleet, targets []metrics.Target) (*FleetReport, error) {
	if fleet == nil {
		return nil, fmt.Errorf("report: nil fleet")
	}
	if err := fleet.Validate(); err != nil {
		return nil, err
	}
	if len(targets) == 0 {
		targets = metrics.StandardTargets
	}
	suite := benchsuite.All()
	rep := &FleetReport{Fleet: fleet.Name, Budget: fleet.Budget.String()}
	for _, fd := range fleet.Devices {
		rep.Devices = append(rep.Devices, fd.Key)
	}
	perBench := make([][]FleetRow, len(suite))
	err := sweep.ForEach(len(suite), func(i int) error {
		bm := suite[i]
		g, err := placement.BuildGroundTruth(sweep.Shared(), fleet, bm.Kernel, bm.CharItems)
		if err != nil {
			return err
		}
		rows := make([]FleetRow, 0, len(targets))
		for _, tgt := range targets {
			p, err := g.Select(tgt)
			if err != nil {
				return fmt.Errorf("%s %v: %w", bm.Name, tgt, err)
			}
			di := fleet.DeviceByKey(p.Device)
			rf, err := analysis.StaticRoofline(bm.Kernel, fleet.Devices[di].Spec)
			if err != nil {
				return err
			}
			rows = append(rows, FleetRow{
				Benchmark:   bm.Name,
				Target:      tgt.String(),
				Device:      p.Device,
				FreqMHz:     p.FreqMHz,
				ESPct:       p.ESPct,
				PLPct:       p.PLPct,
				FleetPowerW: p.FleetPowerW,
				Roofline:    rf.Label.String(),
			})
		}
		perBench[i] = rows
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, rows := range perBench {
		rep.Rows = append(rep.Rows, rows...)
	}
	return rep, nil
}

// DeviceShares summarises how many placements each fleet device won.
func (r *FleetReport) DeviceShares() map[string]int {
	shares := make(map[string]int, len(r.Devices))
	for _, row := range r.Rows {
		shares[row.Device]++
	}
	return shares
}

// Render prints the fleet placement table plus the per-device share
// summary.
func (r *FleetReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fleet placement: %s under %s\n", r.Fleet, r.Budget)
	t := &table{header: []string{"Benchmark", "Target", "Device", "FreqMHz", "ES%", "PL%", "FleetW", "Roofline"}}
	for _, row := range r.Rows {
		t.addRow(row.Benchmark, row.Target, row.Device,
			fmt.Sprintf("%d", row.FreqMHz),
			fmt.Sprintf("%.1f", row.ESPct), fmt.Sprintf("%.1f", row.PLPct),
			fmt.Sprintf("%.0f", row.FleetPowerW), row.Roofline)
	}
	b.WriteString(t.String())
	shares := r.DeviceShares()
	var parts []string
	for _, d := range r.Devices {
		parts = append(parts, fmt.Sprintf("%s %d", d, shares[d]))
	}
	fmt.Fprintf(&b, "placements per device: %s\n", strings.Join(parts, ", "))
	return b.String()
}
