package report

import (
	"strings"
	"testing"

	"synergy/internal/hw"
	"synergy/internal/kernelir/analysis"
	"synergy/internal/metrics"
	"synergy/internal/model"
)

func TestBuildFig1MatchesPaper(t *testing.T) {
	f := BuildFig1()
	// Regression for the hard-coded three-device list Fig. 1 used to
	// carry: the rows must track the full hw catalog.
	if len(f.Devices) != len(hw.BuiltinNames()) {
		t.Fatalf("%d devices, want the whole catalog (%d)", len(f.Devices), len(hw.BuiltinNames()))
	}
	byName := map[string]Fig1Device{}
	for _, d := range f.Devices {
		byName[d.Name] = d
	}
	for _, key := range hw.BuiltinNames() {
		s, err := hw.SpecByName(key)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := byName[s.Name]; !ok {
			t.Errorf("catalog device %s (%s) missing from Fig. 1", key, s.Name)
		}
	}
	v100 := byName["NVIDIA V100"]
	if v100.CoreConfigs != 196 || v100.MinMHz != 135 || v100.MaxMHz != 1530 || v100.MemFreqMHz != 877 {
		t.Errorf("V100 row wrong: %+v", v100)
	}
	a100 := byName["NVIDIA A100"]
	if a100.CoreConfigs != 81 || a100.MinMHz != 210 || a100.MaxMHz != 1410 || a100.MemFreqMHz != 1215 {
		t.Errorf("A100 row wrong: %+v", a100)
	}
	mi100 := byName["AMD MI100"]
	if mi100.CoreConfigs != 16 || mi100.MinMHz != 300 || mi100.MaxMHz != 1502 || mi100.DefaultMHz != 0 {
		t.Errorf("MI100 row wrong: %+v", mi100)
	}
	if !strings.Contains(f.Render(), "Figure 1") {
		t.Error("render missing title")
	}
}

func TestBuildFig2Shapes(t *testing.T) {
	chars, err := BuildFig2()
	if err != nil {
		t.Fatal(err)
	}
	if len(chars) != 2 {
		t.Fatalf("%d characterisations, want 2", len(chars))
	}
	lin, med := chars[0], chars[1]
	if lin.Benchmark != "lin_reg_coeff" || med.Benchmark != "median" {
		t.Fatalf("unexpected benchmarks %s, %s", lin.Benchmark, med.Benchmark)
	}
	if lin.BestSavingPct >= med.BestSavingPct {
		t.Errorf("Fig. 2 contrast lost: lin_reg saves %.1f%%, median %.1f%%",
			lin.BestSavingPct, med.BestSavingPct)
	}
	// The static roofline explains the contrast: the shallow saver is
	// compute-bound, the deep saver memory-bound.
	if lin.Roofline == nil || lin.Roofline.Label != analysis.ComputeBound {
		t.Errorf("lin_reg_coeff roofline = %+v, want compute-bound", lin.Roofline)
	}
	if med.Roofline == nil || med.Roofline.Label != analysis.MemoryBound {
		t.Errorf("median roofline = %+v, want memory-bound", med.Roofline)
	}
	for _, c := range chars {
		if len(c.Front) == 0 || len(c.Points) == 0 {
			t.Errorf("%s: empty series", c.Benchmark)
		}
		if !strings.Contains(c.Render(), "static roofline:") {
			t.Errorf("%s: render lacks roofline line", c.Benchmark)
		}
	}
}

func TestBuildFig8MI100DefaultIsBestPerf(t *testing.T) {
	chars, err := BuildFig8()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range chars {
		if c.Device != "AMD MI100" {
			t.Fatalf("wrong device %s", c.Device)
		}
		// §8.2: on the MI100 the default (auto/max) configuration always
		// delivers the best performance: no speedup above ~1.
		for _, p := range c.Points {
			if p.Speedup > 1.04 {
				t.Errorf("%s: speedup %.3f above the MI100 default", c.Benchmark, p.Speedup)
			}
		}
	}
}

func TestBuildFig4Ordering(t *testing.T) {
	f, err := BuildFig4()
	if err != nil {
		t.Fatal(err)
	}
	// ED2P weighs delay more: its optimum sits at or above EDP's, which
	// sits at or above the energy optimum (Fig. 4's observation).
	if f.MinED2PMHz < f.MinEDPMHz {
		t.Errorf("ED2P optimum %d below EDP optimum %d", f.MinED2PMHz, f.MinEDPMHz)
	}
	if f.MinEDPMHz < f.MinEnerMHz {
		t.Errorf("EDP optimum %d below energy optimum %d", f.MinEDPMHz, f.MinEnerMHz)
	}
	if len(f.Freqs) != 196 {
		t.Errorf("%d sweep points, want 196", len(f.Freqs))
	}
	if !strings.Contains(f.Render(), "MIN_EDP") {
		t.Error("render missing minima")
	}
}

func TestBuildFig5Monotonicity(t *testing.T) {
	f, err := BuildFig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Rows) != 6 {
		t.Fatalf("%d rows, want 6", len(f.Rows))
	}
	// ES_25 <= ES_50 <= ES_75 in energy saving.
	if !(f.Rows[0].SavingPct <= f.Rows[1].SavingPct+1e-9 && f.Rows[1].SavingPct <= f.Rows[2].SavingPct+1e-9) {
		t.Errorf("ES savings not monotone: %v %v %v", f.Rows[0].SavingPct, f.Rows[1].SavingPct, f.Rows[2].SavingPct)
	}
	if f.Render() == "" {
		t.Error("empty render")
	}
}

func TestBuildTable1(t *testing.T) {
	t1, err := BuildTable1()
	if err != nil {
		t.Fatal(err)
	}
	if len(t1.Rows) != 23 {
		t.Fatalf("%d rows, want 23", len(t1.Rows))
	}
	out := t1.Render()
	for _, col := range []string{"k_int_add", "k_gl_access", "black_scholes"} {
		if !strings.Contains(out, col) {
			t.Errorf("render missing %q", col)
		}
	}
}

func TestBuildModelEvaluationSmall(t *testing.T) {
	// Coarse stride keeps this fast; the full-resolution run is the
	// bench harness's job.
	m, err := BuildModelEvaluation(hw.V100(), 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Rows) != len(metrics.StandardTargets) {
		t.Fatalf("%d rows", len(m.Rows))
	}
	if !strings.Contains(m.RenderTable2(), "Best") {
		t.Error("Table 2 render incomplete")
	}
	fig9 := m.RenderFig9(metrics.MinEnergy)
	if !strings.Contains(fig9, "RandomForest") {
		t.Error("Fig 9 render missing algorithms")
	}
}

func TestBuildFig10Small(t *testing.T) {
	cfg := DefaultFig10Config()
	cfg.NodeCounts = []int{1, 2}
	cfg.Steps = 4
	cfg.TrainStride = 16
	cfg.FunctionalCap = 64
	pts, err := BuildFig10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 2 apps x 2 scales x (1 baseline + len(targets)).
	want := 2 * 2 * (1 + len(Fig10Targets))
	if len(pts) != want {
		t.Fatalf("%d points, want %d", len(pts), want)
	}
	// Every target must appear, and some target must save energy at
	// every scale.
	for _, appName := range []string{"cloverleaf", "miniweather"} {
		for _, gpus := range []int{4, 8} {
			bestSaving := 0.0
			for _, p := range pts {
				if p.App == appName && p.GPUs == gpus && p.Target != "default" {
					if p.SavingPct > bestSaving {
						bestSaving = p.SavingPct
					}
				}
			}
			if bestSaving < 5 {
				t.Errorf("%s @ %d GPUs: best saving %.1f%%, expected scalable savings", appName, gpus, bestSaving)
			}
		}
	}
	if !strings.Contains(RenderFig10(pts), "cloverleaf") {
		t.Error("Fig 10 render incomplete")
	}
}

// A benchmark whose actual objective value is zero used to print "+Inf"
// in the Table-2 MAPE column (one division by zero poisoned the mean).
// It must now be skipped, counted, and annotated.
func TestRenderTable2SkipsZeroActuals(t *testing.T) {
	tgt := metrics.MinEnergy
	byAlgo := map[string][]model.PredictionError{
		model.AlgoForest: {
			{Bench: "a", Target: tgt, Algo: model.AlgoForest, ActualObj: 100, PredObj: 110},
			{Bench: "b", Target: tgt, Algo: model.AlgoForest, ActualObj: 0, PredObj: 1},
			{Bench: "c", Target: tgt, Algo: model.AlgoForest, ActualObj: 200, PredObj: 180},
		},
	}
	rows, _ := model.AggregateTable2(byAlgo, []metrics.Target{tgt})
	if len(rows) != 1 {
		t.Fatalf("%d rows, want 1", len(rows))
	}
	c := rows[0].Cells[model.AlgoForest]
	if !c.Computed {
		t.Fatal("cell not computed")
	}
	if c.Skipped != 1 {
		t.Fatalf("Skipped = %d, want 1", c.Skipped)
	}
	if got, want := c.MAPE, 0.1; got < want-1e-12 || got > want+1e-12 {
		t.Fatalf("MAPE = %v, want %v", got, want)
	}
	out := (&ModelEvaluation{Device: "test", Rows: rows}).RenderTable2()
	if strings.Contains(out, "Inf") || strings.Contains(out, "NaN") {
		t.Fatalf("rendered table carries non-finite values:\n%s", out)
	}
	if !strings.Contains(out, "(skip 1)") {
		t.Fatalf("rendered table missing skip annotation:\n%s", out)
	}
}
