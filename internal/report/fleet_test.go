package report

import (
	"strings"
	"testing"

	"synergy/internal/benchsuite"
	"synergy/internal/hw"
	"synergy/internal/metrics"
)

func TestBuildFleetReport(t *testing.T) {
	fleet, err := hw.FleetFromNames([]string{"h100", "xeon8480", "alveo"}, hw.Budget{PowerW: 330})
	if err != nil {
		t.Fatal(err)
	}
	targets := []metrics.Target{metrics.MaxPerf, metrics.MinEnergy, metrics.ES(50)}
	rep, err := BuildFleetReport(fleet, targets)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(benchsuite.All()) * len(targets); len(rep.Rows) != want {
		t.Fatalf("%d rows, want %d", len(rep.Rows), want)
	}
	if rep.Fleet != "h100+xeon8480+alveo" || rep.Budget != "330 W" {
		t.Errorf("header %q / %q", rep.Fleet, rep.Budget)
	}
	valid := map[string]bool{}
	for _, d := range rep.Devices {
		valid[d] = true
	}
	for _, row := range rep.Rows {
		if !valid[row.Device] {
			t.Errorf("%s %s placed on unknown device %q", row.Benchmark, row.Target, row.Device)
		}
		if row.FleetPowerW > 330*(1+1e-12) {
			t.Errorf("%s %s: fleet power %.1f W over budget", row.Benchmark, row.Target, row.FleetPowerW)
		}
		if row.Roofline != "compute-bound" && row.Roofline != "memory-bound" {
			t.Errorf("%s %s: roofline %q", row.Benchmark, row.Target, row.Roofline)
		}
	}
	// The report axis is heterogeneous by construction on this fleet.
	if shares := rep.DeviceShares(); len(shares) < 2 {
		t.Errorf("placements all on one device: %v", shares)
	}
	out := rep.Render()
	for _, want := range []string{"Fleet placement:", "330 W", "placements per device:", "black_scholes"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestBuildFleetReportDefaultsAndErrors(t *testing.T) {
	if _, err := BuildFleetReport(nil, nil); err == nil {
		t.Error("nil fleet accepted")
	}
	bad := &hw.Fleet{Name: "bad"}
	if _, err := BuildFleetReport(bad, nil); err == nil {
		t.Error("invalid fleet accepted")
	}
	fleet, err := hw.FleetFromNames([]string{"v100"}, hw.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := BuildFleetReport(fleet, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(benchsuite.All()) * len(metrics.StandardTargets); len(rep.Rows) != want {
		t.Fatalf("nil targets should mean StandardTargets: %d rows, want %d", len(rep.Rows), want)
	}
}
