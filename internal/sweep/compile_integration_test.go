package sweep

import (
	"sync"
	"sync/atomic"
	"testing"

	"synergy/internal/hw"
	"synergy/internal/kernelir"
	"synergy/internal/kernelir/compile"
	"synergy/internal/kernelir/opt"
)

// TestEngineUsesCompiledPath asserts the sweep engine goes through the
// compiled-program cache — and that the cache compiles a kernel exactly
// once per fingerprint even when many engines race to characterise it
// while the same kernel also executes directly.
func TestEngineUsesCompiledPath(t *testing.T) {
	if kernelir.ActiveRunner() != compile.Default() {
		t.Fatal("compiled runner is not installed as the process executor")
	}

	b := kernelir.NewBuilder("sweep_compile_integration")
	out := b.BufferF32("out", kernelir.Write)
	gid := b.GlobalID()
	acc := b.CopyF(b.ConstF(0))
	b.Repeat(16, func() {
		b.MoveF(acc, b.AddF(acc, b.MulF(b.IntToFloat(gid), b.ConstF(0.25))))
	})
	b.StoreF(out, gid, acc)
	k := b.MustBuild()
	// The program cache keys on the optimizer normal form, so hook on
	// that fingerprint rather than the raw kernel's.
	fp := kernelir.Fingerprint(opt.Cached(k))

	var compilations atomic.Int64
	compile.Default().SetHook(func(got string) {
		if got == fp {
			compilations.Add(1)
		}
	})
	defer compile.Default().SetHook(nil)

	spec, err := hw.SpecByName("v100")
	if err != nil {
		t.Fatal(err)
	}

	const engines = 8
	var wg sync.WaitGroup
	for i := 0; i < engines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := NewEngine(WithWorkers(2))
			if _, err := e.GroundTruth(spec, k, 512); err != nil {
				t.Errorf("GroundTruth: %v", err)
			}
			// Direct execution dispatches through the same cache.
			args := kernelir.Args{F32: map[string][]float32{"out": make([]float32, 64)}}
			if err := kernelir.Execute(k, args, 64); err != nil {
				t.Errorf("Execute: %v", err)
			}
		}()
	}
	wg.Wait()

	if got := compilations.Load(); got != 1 {
		t.Fatalf("kernel compiled %d times across %d engines + direct execution, want exactly once", got, engines)
	}
}
