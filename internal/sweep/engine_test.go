package sweep

import (
	"strings"
	"sync"
	"testing"

	"synergy/internal/benchsuite"
	"synergy/internal/features"
	"synergy/internal/hw"
	"synergy/internal/kernelir"
	"synergy/internal/metrics"
)

// referenceSweep replicates the historical serial ground-truth path
// byte for byte: one Evaluate per table entry, in order, per-item
// scaling applied with the identical expression.
func referenceSweep(t *testing.T, spec *hw.Spec, k *kernelir.Kernel, items int64) *metrics.Sweep {
	t.Helper()
	w, err := features.KernelWorkload(k, items)
	if err != nil {
		t.Fatal(err)
	}
	pts := make([]metrics.Point, len(spec.CoreFreqsMHz))
	for i, f := range spec.CoreFreqsMHz {
		m, err := spec.Evaluate(w, f)
		if err != nil {
			t.Fatal(err)
		}
		pts[i] = metrics.Point{
			FreqMHz: f,
			TimeSec: m.TimeSec / float64(items) * 1e9,
			EnergyJ: m.EnergyJ / float64(items) * 1e9,
		}
	}
	s, err := metrics.NewSweep(pts, spec.BaselineCoreMHz())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func sweepsIdentical(a, b *metrics.Sweep) bool {
	if a.Baseline != b.Baseline || len(a.Points) != len(b.Points) {
		return false
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			return false
		}
	}
	return true
}

// TestGoldenEquivalenceSerialVsPooled proves the parallel engine
// returns bit-identical sweeps to the serial path for every device spec
// and every benchmark in the suite.
func TestGoldenEquivalenceSerialVsPooled(t *testing.T) {
	t.Parallel()
	for _, devName := range []string{"v100", "a100", "mi100", "xeon"} {
		spec, err := hw.SpecByName(devName)
		if err != nil {
			t.Fatal(err)
		}
		serial := NewEngine(WithWorkers(1))
		pooled := NewEngine(WithWorkers(8))
		for _, name := range benchsuite.Names() {
			b, err := benchsuite.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			want := referenceSweep(t, spec, b.Kernel, b.CharItems)
			got1, err := serial.GroundTruth(spec, b.Kernel, b.CharItems)
			if err != nil {
				t.Fatalf("%s/%s serial: %v", devName, name, err)
			}
			got8, err := pooled.GroundTruth(spec, b.Kernel, b.CharItems)
			if err != nil {
				t.Fatalf("%s/%s pooled: %v", devName, name, err)
			}
			if !sweepsIdentical(want, got1) {
				t.Errorf("%s/%s: serial engine differs from reference", devName, name)
			}
			if !sweepsIdentical(want, got8) {
				t.Errorf("%s/%s: pooled engine differs from reference", devName, name)
			}
		}
	}
}

// TestMemoizationSecondRequestFree shows the second request for a key
// performs zero evaluations: the hook fires once and the evaluation
// counter stays at one, while both responses carry identical data.
func TestMemoizationSecondRequestFree(t *testing.T) {
	t.Parallel()
	spec := hw.V100()
	b, err := benchsuite.ByName("black_scholes")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	hookCalls := map[Key]int{}
	eng := NewEngine(WithHook(func(k Key) {
		mu.Lock()
		hookCalls[k]++
		mu.Unlock()
	}))
	first, err := eng.GroundTruth(spec, b.Kernel, b.CharItems)
	if err != nil {
		t.Fatal(err)
	}
	second, err := eng.GroundTruth(spec, b.Kernel, b.CharItems)
	if err != nil {
		t.Fatal(err)
	}
	if n := eng.Evaluations(); n != 1 {
		t.Errorf("evaluations = %d, want 1", n)
	}
	key := KeyFor(spec, b.Kernel, b.CharItems)
	if hookCalls[key] != 1 || len(hookCalls) != 1 {
		t.Errorf("hook calls = %v, want exactly one call for %s", hookCalls, key)
	}
	if !sweepsIdentical(first, second) {
		t.Error("cached sweep differs from computed sweep")
	}
	// Different launch size is a different content key.
	if _, err := eng.GroundTruth(spec, b.Kernel, b.CharItems/2); err != nil {
		t.Fatal(err)
	}
	if n := eng.Evaluations(); n != 2 {
		t.Errorf("evaluations after new key = %d, want 2", n)
	}
}

// TestSingleflightConcurrentCallers launches many goroutines on the
// same key and checks they share one computation (run under -race).
func TestSingleflightConcurrentCallers(t *testing.T) {
	t.Parallel()
	spec := hw.V100()
	b, err := benchsuite.ByName("matmul")
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(WithWorkers(4))
	want := referenceSweep(t, spec, b.Kernel, b.CharItems)
	const callers = 16
	var wg sync.WaitGroup
	results := make([]*metrics.Sweep, callers)
	errs := make([]error, callers)
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = eng.GroundTruth(spec, b.Kernel, b.CharItems)
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if !sweepsIdentical(want, results[i]) {
			t.Errorf("caller %d: sweep differs from reference", i)
		}
	}
	if n := eng.Evaluations(); n != 1 {
		t.Errorf("evaluations = %d, want 1 (singleflight)", n)
	}
}

// TestConcurrentDistinctKeys exercises the cache under concurrent
// misses for different keys (race detector coverage of the entry map).
func TestConcurrentDistinctKeys(t *testing.T) {
	t.Parallel()
	spec := hw.MI100()
	names := benchsuite.Names()
	eng := NewEngine()
	err := eng.ForEach(len(names), func(i int) error {
		b, err := benchsuite.ByName(names[i])
		if err != nil {
			return err
		}
		_, err = eng.GroundTruth(spec, b.Kernel, b.CharItems)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := eng.Evaluations(); n != int64(len(names)) {
		t.Errorf("evaluations = %d, want %d", n, len(names))
	}
	if n := eng.CacheSize(); n != len(names) {
		t.Errorf("cache size = %d, want %d", n, len(names))
	}
}

// TestNonPositiveItemsRejected is the regression test for the ±Inf/NaN
// poisoning path: a non-positive launch size must fail loudly.
func TestNonPositiveItemsRejected(t *testing.T) {
	t.Parallel()
	spec := hw.V100()
	b, err := benchsuite.ByName("vec_add")
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine()
	for _, items := range []int64{0, -1, -1 << 40} {
		_, err := eng.GroundTruth(spec, b.Kernel, items)
		if err == nil {
			t.Fatalf("items=%d: expected error", items)
		}
		if !strings.Contains(err.Error(), "launch size must be positive") {
			t.Errorf("items=%d: undescriptive error %q", items, err)
		}
	}
	if n := eng.Evaluations(); n != 0 {
		t.Errorf("rejected requests performed %d evaluations", n)
	}
}

// TestErrorsNotMemoized: a failing sweep must not poison the cache.
func TestErrorsNotMemoized(t *testing.T) {
	t.Parallel()
	// A kernel that performs no work fails workload validation.
	kb := kernelir.NewBuilder("noop")
	in := kb.BufferF32("in", kernelir.Read)
	_ = in
	k, err := kb.Build()
	if err != nil {
		// Builder may reject empty bodies outright; nothing to test then.
		t.Skipf("cannot build empty kernel: %v", err)
	}
	eng := NewEngine()
	if _, err := eng.GroundTruth(hw.V100(), k, 1<<10); err == nil {
		t.Skip("empty kernel unexpectedly evaluates; nothing to assert")
	}
	if n := eng.CacheSize(); n != 0 {
		t.Errorf("failed sweep left %d cache entries", n)
	}
}

// TestInvalidate drops memoized sweeps so the next request recomputes.
func TestInvalidate(t *testing.T) {
	t.Parallel()
	spec := hw.A100()
	b, err := benchsuite.ByName("median")
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine()
	if _, err := eng.GroundTruth(spec, b.Kernel, b.CharItems); err != nil {
		t.Fatal(err)
	}
	eng.Invalidate()
	if n := eng.CacheSize(); n != 0 {
		t.Fatalf("cache size after invalidate = %d", n)
	}
	if _, err := eng.GroundTruth(spec, b.Kernel, b.CharItems); err != nil {
		t.Fatal(err)
	}
	if n := eng.Evaluations(); n != 2 {
		t.Errorf("evaluations = %d, want 2 after invalidation", n)
	}
}

// TestFingerprintContentSensitivity: distinct kernels get distinct
// fingerprints; the same kernel fingerprint is stable.
func TestFingerprintContentSensitivity(t *testing.T) {
	t.Parallel()
	a, err := benchsuite.ByName("vec_add")
	if err != nil {
		t.Fatal(err)
	}
	b, err := benchsuite.ByName("matmul")
	if err != nil {
		t.Fatal(err)
	}
	if Fingerprint(a.Kernel) == Fingerprint(b.Kernel) {
		t.Error("different kernels share a fingerprint")
	}
	if Fingerprint(a.Kernel) != Fingerprint(a.Kernel) {
		t.Error("fingerprint not stable")
	}
}

// TestForEachPropagatesError: the parallel-for reports the failure.
func TestForEachPropagatesError(t *testing.T) {
	t.Parallel()
	eng := NewEngine(WithWorkers(4))
	wantErr := "boom at 7"
	err := eng.ForEach(32, func(i int) error {
		if i == 7 {
			return &indexError{msg: wantErr}
		}
		return nil
	})
	if err == nil || err.Error() != wantErr {
		t.Fatalf("error = %v, want %q", err, wantErr)
	}
}

type indexError struct{ msg string }

func (e *indexError) Error() string { return e.msg }
