// Package sweep provides the shared frequency-sweep engine: every
// ground-truth evaluation of a (device spec × kernel × launch size)
// triple across the device's frequency table goes through one
// concurrency-safe service. The engine fans the per-frequency
// evaluations out over a bounded worker pool, memoizes completed sweeps
// under a content key (bounded LRU), and de-duplicates concurrent
// requests for the same sweep with singleflight semantics — so the
// figures, target selections and ML training sets that are all derived
// from the same sweeps share one computation instead of re-running it
// serially at every call site.
package sweep

import (
	"container/list"
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"synergy/internal/hw"
	"synergy/internal/kernelir"
	"synergy/internal/kernelir/compile"
	"synergy/internal/metrics"
	"synergy/internal/telemetry"
)

// DefaultCacheCap is the default memo-cache entry cap. It is far above
// anything the benchmark suite or the report pipeline allocates (a few
// hundred keys), so bounded eviction never perturbs existing flows; it
// exists to stop a long-running service from growing without bound.
const DefaultCacheCap = 4096

// Key is the content key a memoized sweep is stored under: the device
// identity, the kernel fingerprint (a hash of its full disassembly, so
// any change to the instruction stream, parameters or traffic factor
// yields a new key) and the launch size.
type Key struct {
	Device string
	Kernel string
	Items  int64
}

// String renders the key for diagnostics.
func (k Key) String() string {
	return fmt.Sprintf("%s/%s/%d", k.Device, k.Kernel, k.Items)
}

// Fingerprint returns the content fingerprint of a kernel: the SHA-256
// of its disassembly (name, parameters, body, locals, traffic factor).
// It is the same identity the compiled-program cache keys on (see
// kernelir.Fingerprint), so the engine's memo and the program cache
// agree on when two kernels are the same kernel.
func Fingerprint(k *kernelir.Kernel) string {
	return kernelir.Fingerprint(k)
}

// specKey identifies a device spec: the name plus the shape of its
// frequency table, so two specs sharing a name but different clock
// tables cannot alias in the cache.
func specKey(s *hw.Spec) string {
	return fmt.Sprintf("%s/%d@%d-%d/base%d",
		s.Name, len(s.CoreFreqsMHz), s.MinCoreMHz(), s.MaxCoreMHz(), s.BaselineCoreMHz())
}

// entry is one memoized (or in-flight) sweep. done is closed once sweep
// and err are final; concurrent requesters of the same key block on it
// instead of recomputing. elem is the entry's position in the LRU list
// (nil once evicted). Evicting an in-flight entry is safe: waiters hold
// the pointer and still see the result; only future requesters miss.
type entry struct {
	key   Key
	done  chan struct{}
	sweep *metrics.Sweep
	err   error
	elem  *list.Element
}

// Engine is a concurrency-safe, memoizing parallel sweep service.
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	workers  int
	cacheCap int

	mu      sync.Mutex
	entries map[Key]*entry
	order   *list.List // front = most recently used; values are *entry
	hook    func(Key)
	tel     *telemetry.Registry

	evals     atomic.Int64
	evictions atomic.Int64
}

// Option configures an Engine.
type Option func(*Engine)

// WithWorkers bounds the evaluation pool to n workers (n >= 1). One
// worker reproduces the serial evaluation order exactly; the default is
// GOMAXPROCS.
func WithWorkers(n int) Option {
	return func(e *Engine) {
		if n >= 1 {
			e.workers = n
		}
	}
}

// WithCacheCap bounds the memo cache to n entries with LRU eviction
// (n <= 0 removes the bound). The default is DefaultCacheCap.
func WithCacheCap(n int) Option {
	return func(e *Engine) { e.cacheCap = n }
}

// WithHook registers fn to be called once per completed cache-miss
// evaluation, with the evaluated key. Hooks observe how often the
// engine really computes — the call-count assertion tools build on it.
func WithHook(fn func(Key)) Option {
	return func(e *Engine) { e.hook = fn }
}

// NewEngine constructs an engine with an empty cache.
func NewEngine(opts ...Option) *Engine {
	e := &Engine{
		workers:  runtime.GOMAXPROCS(0),
		cacheCap: DefaultCacheCap,
		entries:  map[Key]*entry{},
		order:    list.New(),
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// shared is the process-wide engine used by the package-level helpers;
// all production callers route through it, which is what makes repeated
// sweeps of the same (spec, kernel, items) free across subsystems.
var shared = NewEngine()

// Shared returns the process-wide engine.
func Shared() *Engine { return shared }

// SetHook replaces the engine's evaluation hook (nil to remove). Meant
// for diagnostics and call-count assertions on the shared engine.
func (e *Engine) SetHook(fn func(Key)) {
	e.mu.Lock()
	e.hook = fn
	e.mu.Unlock()
}

// SetTelemetry attaches a telemetry registry (nil detaches): requests
// are counted as synergy_sweep_requests_total{result="hit"|"miss"} —
// singleflight waiters count as hits, since they share the miss's
// computation — and LRU evictions as synergy_sweep_evictions_total.
// A miss is a completed computation, so the miss counter equals
// Evaluations() and the eviction counter equals Evictions(); failed
// evaluations count as neither (they are not memoized).
func (e *Engine) SetTelemetry(r *telemetry.Registry) {
	e.mu.Lock()
	e.tel = r
	e.mu.Unlock()
}

func (e *Engine) telemetry() *telemetry.Registry {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.tel
}

// Evaluations returns how many sweeps the engine has actually computed
// (cache misses). Requests served from the cache do not count.
func (e *Engine) Evaluations() int64 { return e.evals.Load() }

// Evictions returns how many memoized sweeps the LRU bound has evicted.
func (e *Engine) Evictions() int64 { return e.evictions.Load() }

// CacheSize returns the number of memoized sweeps.
func (e *Engine) CacheSize() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.entries)
}

// Invalidate drops every memoized sweep. In-flight evaluations complete
// normally but are not re-inserted for new requesters. Invalidation is
// not eviction: the Evictions counter is untouched.
func (e *Engine) Invalidate() {
	e.mu.Lock()
	for _, en := range e.entries {
		en.elem = nil
	}
	e.entries = map[Key]*entry{}
	e.order = list.New()
	e.mu.Unlock()
}

// removeLocked unlinks an entry from the cache (caller holds e.mu).
func (e *Engine) removeLocked(en *entry) {
	delete(e.entries, en.key)
	if en.elem != nil {
		e.order.Remove(en.elem)
		en.elem = nil
	}
}

// insertLocked links a fresh entry at the MRU position and evicts from
// the LRU end while over cap (caller holds e.mu).
func (e *Engine) insertLocked(en *entry) {
	e.entries[en.key] = en
	en.elem = e.order.PushFront(en)
	if e.cacheCap <= 0 {
		return
	}
	for len(e.entries) > e.cacheCap {
		back := e.order.Back()
		if back == nil {
			return
		}
		victim := back.Value.(*entry)
		e.removeLocked(victim)
		e.evictions.Add(1)
		e.tel.Counter("synergy_sweep_evictions_total").Inc()
	}
}

// KeyFor returns the content key the engine would use for a request.
func KeyFor(spec *hw.Spec, k *kernelir.Kernel, items int64) Key {
	return Key{Device: specKey(spec), Kernel: Fingerprint(k), Items: items}
}

// GroundTruth measures (through the device model) the per-item
// time/energy of the kernel at every supported frequency. Points carry
// per-item units: ns in TimeSec, nJ in EnergyJ — target selection is
// invariant to this uniform scaling. Results are memoized; concurrent
// callers of the same key share one computation. The returned sweep is
// a private copy the caller may use freely.
func (e *Engine) GroundTruth(spec *hw.Spec, k *kernelir.Kernel, items int64) (*metrics.Sweep, error) {
	return e.GroundTruthContext(context.Background(), spec, k, items)
}

// GroundTruthContext is GroundTruth with cancellation: a canceled
// context abandons the request (waiters stop waiting; a canceled
// evaluation stops scheduling its remaining frequency points and is not
// memoized).
func (e *Engine) GroundTruthContext(ctx context.Context, spec *hw.Spec, k *kernelir.Kernel, items int64) (*metrics.Sweep, error) {
	if spec == nil || k == nil {
		return nil, fmt.Errorf("sweep: nil spec or kernel")
	}
	if items <= 0 {
		return nil, fmt.Errorf("sweep: kernel %q: launch size must be positive, got %d items", k.Name, items)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	key := KeyFor(spec, k, items)

	e.mu.Lock()
	if en, ok := e.entries[key]; ok {
		if en.elem != nil {
			e.order.MoveToFront(en.elem)
		}
		tel := e.tel
		e.mu.Unlock()
		tel.Counter("synergy_sweep_requests_total", "result", "hit").Inc()
		select {
		case <-en.done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if en.err != nil {
			return nil, en.err
		}
		return cloneSweep(en.sweep), nil
	}
	en := &entry{key: key, done: make(chan struct{})}
	e.insertLocked(en)
	hook := e.hook
	tel := e.tel
	e.mu.Unlock()

	en.sweep, en.err = e.evaluate(ctx, spec, k, items)
	if en.err != nil {
		// Failed sweeps are not memoized: a later request re-evaluates.
		// Guard by identity — the slot may already hold a successor
		// (eviction plus re-request while we were computing).
		e.mu.Lock()
		if cur, ok := e.entries[key]; ok && cur == en {
			e.removeLocked(en)
		}
		e.mu.Unlock()
	} else {
		e.evals.Add(1)
		tel.Counter("synergy_sweep_requests_total", "result", "miss").Inc()
		if hook != nil {
			hook(key)
		}
	}
	close(en.done)
	if en.err != nil {
		return nil, en.err
	}
	return cloneSweep(en.sweep), nil
}

// evaluate computes one sweep, fanning the frequency table out over the
// worker pool. The per-point arithmetic matches the historical serial
// path exactly, so parallel results are bit-identical to serial ones.
func (e *Engine) evaluate(ctx context.Context, spec *hw.Spec, k *kernelir.Kernel, items int64) (*metrics.Sweep, error) {
	// Go through the compiled-program cache: the program carries the
	// feature vector extracted at compile time, so repeated sweeps of the
	// same kernel skip re-walking the body. Compile and KernelWorkload
	// both bottom out in Validate, so error behaviour is unchanged.
	prog, err := compile.Cached(k)
	if err != nil {
		return nil, err
	}
	w := prog.Workload(items)
	pts := make([]metrics.Point, len(spec.CoreFreqsMHz))
	err = e.ForEachContext(ctx, len(pts), func(i int) error {
		f := spec.CoreFreqsMHz[i]
		m, err := spec.Evaluate(w, f)
		if err != nil {
			return err
		}
		pts[i] = metrics.Point{
			FreqMHz: f,
			TimeSec: m.TimeSec / float64(items) * 1e9,
			EnergyJ: m.EnergyJ / float64(items) * 1e9,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return metrics.NewSweep(pts, spec.BaselineCoreMHz())
}

// ForEach runs fn(0..n-1) across the engine's worker pool and returns
// the first error (remaining indices are skipped once an error occurs).
// It is the bounded parallel-for the engine itself uses for frequency
// fan-out, exported so batch callers (prefetching a benchmark suite,
// characterising many kernels) can share the same bound.
func (e *Engine) ForEach(n int, fn func(i int) error) error {
	return e.ForEachContext(context.Background(), n, fn)
}

// ForEachContext is ForEach with cancellation: once the context is
// canceled no further indices are scheduled, in-flight callbacks finish,
// and the context error is returned (unless a callback failed first).
func (e *Engine) ForEachContext(ctx context.Context, n int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers := e.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		errOnce sync.Once
		firstEr error
		failed  atomic.Bool
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := fn(i); err != nil {
					errOnce.Do(func() { firstEr = err })
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstEr != nil {
		return firstEr
	}
	return ctx.Err()
}

// Prefetch warms the cache with the sweeps of every kernel at one
// launch size, computing whole sweeps concurrently. Subsequent
// GroundTruth calls for these keys are cache hits.
func (e *Engine) Prefetch(spec *hw.Spec, ks []*kernelir.Kernel, items int64) error {
	return e.ForEach(len(ks), func(i int) error {
		_, err := e.GroundTruth(spec, ks[i], items)
		return err
	})
}

// cloneSweep returns an independent copy so memoized points can never
// be mutated by a caller.
func cloneSweep(s *metrics.Sweep) *metrics.Sweep {
	cp := *s
	cp.Points = make([]metrics.Point, len(s.Points))
	copy(cp.Points, s.Points)
	return &cp
}

// GroundTruth evaluates through the process-wide shared engine.
func GroundTruth(spec *hw.Spec, k *kernelir.Kernel, items int64) (*metrics.Sweep, error) {
	return shared.GroundTruth(spec, k, items)
}

// GroundTruthContext evaluates through the process-wide shared engine
// with cancellation (see Engine.GroundTruthContext).
func GroundTruthContext(ctx context.Context, spec *hw.Spec, k *kernelir.Kernel, items int64) (*metrics.Sweep, error) {
	return shared.GroundTruthContext(ctx, spec, k, items)
}

// Prefetch warms the process-wide shared engine.
func Prefetch(spec *hw.Spec, ks []*kernelir.Kernel, items int64) error {
	return shared.Prefetch(spec, ks, items)
}

// ForEach runs a bounded parallel-for on the shared engine's pool.
func ForEach(n int, fn func(i int) error) error {
	return shared.ForEach(n, fn)
}
