package sweep

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"synergy/internal/benchsuite"
	"synergy/internal/hw"
)

// TestLRUEvictionBoundsCache: with a cap of 2, sweeping three distinct
// keys evicts the least recently used; re-requesting the evicted key
// recomputes, while the surviving keys stay free.
func TestLRUEvictionBoundsCache(t *testing.T) {
	t.Parallel()
	spec := hw.V100()
	names := []string{"vec_add", "matmul", "black_scholes"}
	eng := NewEngine(WithCacheCap(2), WithWorkers(1))
	for _, name := range names {
		b, err := benchsuite.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.GroundTruth(spec, b.Kernel, b.CharItems); err != nil {
			t.Fatal(err)
		}
	}
	if n := eng.CacheSize(); n != 2 {
		t.Fatalf("cache size = %d, want 2 (capped)", n)
	}
	if n := eng.Evictions(); n != 1 {
		t.Fatalf("evictions = %d, want 1", n)
	}
	// vec_add was evicted (oldest); matmul and black_scholes are hits.
	for _, name := range names[1:] {
		b, _ := benchsuite.ByName(name)
		if _, err := eng.GroundTruth(spec, b.Kernel, b.CharItems); err != nil {
			t.Fatal(err)
		}
	}
	if n := eng.Evaluations(); n != 3 {
		t.Fatalf("evaluations = %d, want 3 (recent keys served from cache)", n)
	}
	b, _ := benchsuite.ByName("vec_add")
	if _, err := eng.GroundTruth(spec, b.Kernel, b.CharItems); err != nil {
		t.Fatal(err)
	}
	if n := eng.Evaluations(); n != 4 {
		t.Fatalf("evaluations = %d, want 4 (evicted key recomputed)", n)
	}
}

// TestLRUHitRefreshesRecency: touching the oldest key protects it from
// the next eviction.
func TestLRUHitRefreshesRecency(t *testing.T) {
	t.Parallel()
	spec := hw.A100()
	eng := NewEngine(WithCacheCap(2), WithWorkers(1))
	a, _ := benchsuite.ByName("vec_add")
	b, _ := benchsuite.ByName("matmul")
	c, _ := benchsuite.ByName("median")
	for _, bench := range []*benchsuite.Benchmark{a, b} {
		if _, err := eng.GroundTruth(spec, bench.Kernel, bench.CharItems); err != nil {
			t.Fatal(err)
		}
	}
	// Touch a: it becomes MRU, so inserting c evicts b.
	if _, err := eng.GroundTruth(spec, a.Kernel, a.CharItems); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.GroundTruth(spec, c.Kernel, c.CharItems); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.GroundTruth(spec, a.Kernel, a.CharItems); err != nil {
		t.Fatal(err)
	}
	if n := eng.Evaluations(); n != 3 {
		t.Fatalf("evaluations = %d, want 3 (refreshed key must survive eviction)", n)
	}
}

// TestDefaultCapDoesNotEvict: the default cap is far above the whole
// benchmark suite across all device specs, so nothing is evicted in the
// existing flows.
func TestDefaultCapDoesNotEvict(t *testing.T) {
	t.Parallel()
	eng := NewEngine()
	for _, devName := range []string{"v100", "mi100"} {
		spec, err := hw.SpecByName(devName)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range benchsuite.Names() {
			b, err := benchsuite.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := eng.GroundTruth(spec, b.Kernel, b.CharItems); err != nil {
				t.Fatal(err)
			}
		}
	}
	if n := eng.Evictions(); n != 0 {
		t.Fatalf("default cap evicted %d entries", n)
	}
}

// TestForEachContextCancelStopsScheduling: after cancellation, no new
// indices are dispatched — the canceled parallel-for completes quickly
// with the context error instead of grinding through the whole range.
func TestForEachContextCancelStopsScheduling(t *testing.T) {
	t.Parallel()
	eng := NewEngine(WithWorkers(4))
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	const n = 10_000
	err := eng.ForEachContext(ctx, n, func(i int) error {
		if started.Add(1) == 8 {
			cancel()
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The four workers may each have had one callback in flight at
	// cancellation; far fewer than n items must have started.
	if s := started.Load(); s >= n/2 {
		t.Fatalf("%d of %d items started after cancel", s, n)
	}
	cancel()
}

// TestForEachContextCallbackErrorWins: a callback failure is reported
// in preference to a later cancellation.
func TestForEachContextCallbackErrorWins(t *testing.T) {
	t.Parallel()
	eng := NewEngine(WithWorkers(2))
	boom := errors.New("boom")
	err := eng.ForEachContext(context.Background(), 16, func(i int) error {
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want callback error", err)
	}
}

// TestGroundTruthContextPreCanceled: a canceled context fails fast with
// no evaluation and no cache pollution.
func TestGroundTruthContextPreCanceled(t *testing.T) {
	t.Parallel()
	spec := hw.V100()
	b, err := benchsuite.ByName("vec_add")
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.GroundTruthContext(ctx, spec, b.Kernel, b.CharItems); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := eng.Evaluations(); n != 0 {
		t.Errorf("canceled request performed %d evaluations", n)
	}
	if n := eng.CacheSize(); n != 0 {
		t.Errorf("canceled request left %d cache entries", n)
	}
	// The engine stays healthy for later, uncanceled requests.
	if _, err := eng.GroundTruth(spec, b.Kernel, b.CharItems); err != nil {
		t.Fatal(err)
	}
}
