// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (§2, §5, §8). Each benchmark regenerates the
// corresponding experiment end to end and reports its headline numbers
// through b.ReportMetric, so `go test -bench=.` reproduces the study and
// prints the quantities to compare against the paper (EXPERIMENTS.md
// records the side-by-side).
package synergy

import (
	"strings"
	"testing"

	"synergy/internal/apps"
	"synergy/internal/benchsuite"
	"synergy/internal/core"
	"synergy/internal/features"
	"synergy/internal/governor"
	"synergy/internal/hw"
	"synergy/internal/kernelir"
	"synergy/internal/metrics"
	"synergy/internal/microbench"
	"synergy/internal/model"
	"synergy/internal/power"
	"synergy/internal/report"
	"synergy/internal/sweep"
	"synergy/internal/sycl"
)

// BenchmarkFig1_FrequencyTables regenerates the device frequency
// availability of Fig. 1.
func BenchmarkFig1_FrequencyTables(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := report.BuildFig1()
		if len(f.Devices) != 3 {
			b.Fatal("expected 3 devices")
		}
	}
	f := report.BuildFig1()
	for _, d := range f.Devices {
		b.ReportMetric(float64(d.CoreConfigs), strings.ReplaceAll(d.Name, " ", "_")+"_configs")
	}
}

// BenchmarkFig2_KernelCharacterization regenerates the Fig. 2 contrast:
// lin_reg_coeff (compute-bound, little headroom) vs median filter
// (memory-bound, >20% savings) on the V100.
func BenchmarkFig2_KernelCharacterization(b *testing.B) {
	var chars []*report.Characterization
	for i := 0; i < b.N; i++ {
		var err error
		chars, err = report.BuildFig2()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(chars[0].BestSavingPct, "linreg_saving_%")
	b.ReportMetric(chars[1].BestSavingPct, "median_saving_%")
}

// BenchmarkFig4_BlackScholesEDP regenerates the EDP/ED2P study of
// Fig. 4 and reports where the minima land.
func BenchmarkFig4_BlackScholesEDP(b *testing.B) {
	var f *report.Fig4
	for i := 0; i < b.N; i++ {
		var err error
		f, err = report.BuildFig4()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(f.MinEDPMHz), "min_edp_MHz")
	b.ReportMetric(float64(f.MinED2PMHz), "min_ed2p_MHz")
}

// BenchmarkFig5_EnergyMetrics regenerates the ES_x / PL_x selections of
// Fig. 5 for Black-Scholes.
func BenchmarkFig5_EnergyMetrics(b *testing.B) {
	var f *report.Fig5
	for i := 0; i < b.N; i++ {
		var err error
		f, err = report.BuildFig5()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range f.Rows {
		b.ReportMetric(r.SavingPct, r.Target.String()+"_saving_%")
	}
}

// BenchmarkTable1_FeatureExtraction runs the compiler pass over the
// whole 23-benchmark suite (Table 1).
func BenchmarkTable1_FeatureExtraction(b *testing.B) {
	suite := benchsuite.All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, bench := range suite {
			if _, err := features.Extract(bench.Kernel); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(suite)), "benchmarks")
}

// BenchmarkFig7_V100Characterization regenerates the four-benchmark V100
// characterisation of Fig. 7.
func BenchmarkFig7_V100Characterization(b *testing.B) {
	var chars []*report.Characterization
	for i := 0; i < b.N; i++ {
		var err error
		chars, err = report.BuildFig7()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, c := range chars {
		b.ReportMetric(c.BestSavingPct, c.Benchmark+"_saving_%")
	}
}

// BenchmarkFig8_MI100Characterization regenerates the MI100
// characterisation of Fig. 8 (16 DPM states, default = best
// performance).
func BenchmarkFig8_MI100Characterization(b *testing.B) {
	var chars []*report.Characterization
	for i := 0; i < b.N; i++ {
		var err error
		chars, err = report.BuildFig8()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, c := range chars {
		b.ReportMetric(c.BestSavingPct, c.Benchmark+"_saving_%")
	}
}

// evalStride subsamples the training sweep in the model benches: it
// keeps the harness runnable in minutes while preserving the algorithm
// ranking (use stride 1 for the full-resolution campaign).
const evalStride = 8

// BenchmarkFig9_PredictionAPE regenerates the per-benchmark frequency-
// prediction errors of Fig. 9 (all algorithms, all objectives).
func BenchmarkFig9_PredictionAPE(b *testing.B) {
	var m *report.ModelEvaluation
	for i := 0; i < b.N; i++ {
		var err error
		m, err = report.BuildModelEvaluation(hw.V100(), evalStride)
		if err != nil {
			b.Fatal(err)
		}
	}
	zero := 0
	for _, e := range m.Raw {
		if e.APE == 0 {
			zero++
		}
	}
	b.ReportMetric(float64(len(m.Raw)), "predictions")
	b.ReportMetric(float64(zero), "exact_predictions")
}

// BenchmarkTable2_ErrorAnalysis regenerates Table 2 (RMSE/MAPE per
// objective × algorithm and the best-algorithm column).
func BenchmarkTable2_ErrorAnalysis(b *testing.B) {
	var m *report.ModelEvaluation
	for i := 0; i < b.N; i++ {
		var err error
		m, err = report.BuildModelEvaluation(hw.V100(), evalStride)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range m.Rows {
		if c, ok := row.Cells[row.Best]; ok {
			b.ReportMetric(c.MAPE, row.Target.String()+"_best_MAPE")
		}
	}
}

// BenchmarkFig10_EnergyScaling regenerates the weak-scaling energy study
// of Fig. 10 (CloverLeaf + MiniWeather, baseline + every target, 4 to 16
// GPUs here; synergy-cluster runs the full 64-GPU campaign).
func BenchmarkFig10_EnergyScaling(b *testing.B) {
	cfg := report.DefaultFig10Config()
	cfg.NodeCounts = []int{1, 2, 4}
	cfg.Steps = 6
	cfg.TrainStride = evalStride
	cfg.FunctionalCap = 128
	var pts []report.Fig10Point
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = report.BuildFig10(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		if p.GPUs == 16 && (p.Target == "ES_50" || p.Target == "PL_50") {
			b.ReportMetric(p.SavingPct, p.App+"_"+p.Target+"_saving_%")
		}
	}
}

// BenchmarkLimitations_ShortKernelProfiling quantifies the §4.4
// limitation: relative error of sampled kernel energy vs kernel length.
func BenchmarkLimitations_ShortKernelProfiling(b *testing.B) {
	spec := hw.V100()
	var shortErr, longErr float64
	for i := 0; i < b.N; i++ {
		dev := hw.NewDevice(spec)
		short, err := dev.ExecuteKernel(hw.Workload{Name: "short", Items: 1 << 12, FloatOps: 100, GlobalBytes: 8})
		if err != nil {
			b.Fatal(err)
		}
		long, err := dev.ExecuteKernel(hw.Workload{Name: "long", Items: 1 << 26, FloatOps: 10, GlobalBytes: 256})
		if err != nil {
			b.Fatal(err)
		}
		sampled := dev.SampledEnergyBetween(short.Start, short.End, 0.015)
		shortErr = relErr(sampled, short.EnergyJ)
		sampled = dev.SampledEnergyBetween(long.Start, long.End, 0.015)
		longErr = relErr(sampled, long.EnergyJ)
	}
	b.ReportMetric(100*shortErr, "short_kernel_err_%")
	b.ReportMetric(100*longErr, "long_kernel_err_%")
}

// BenchmarkLimitations_ClockSetOverhead quantifies the §4.4 observation
// that NVML frequency-setting overhead grows with the number of
// submitted kernels: total overhead for 100 kernels alternating between
// two frequencies vs pinning one.
func BenchmarkLimitations_ClockSetOverhead(b *testing.B) {
	spec := hw.V100()
	kern := func() *kernelir.Kernel {
		kb := kernelir.NewBuilder("tiny")
		in := kb.BufferF32("in", kernelir.Read)
		out := kb.BufferF32("out", kernelir.Write)
		gid := kb.GlobalID()
		kb.StoreF(out, gid, kb.LoadF(in, gid))
		return kb.MustBuild()
	}()
	data := kernelir.Args{F32: map[string][]float32{"in": make([]float32, 256), "out": make([]float32, 256)}}
	var overheadFrac float64
	for i := 0; i < b.N; i++ {
		dev := sycl.NewDevice(spec)
		pm, err := power.NewPrivilegedManager(dev.HW())
		if err != nil {
			b.Fatal(err)
		}
		q := core.NewQueue(dev, pm)
		fa := spec.CoreFreqsMHz[50]
		fb := spec.CoreFreqsMHz[150]
		for k := 0; k < 100; k++ {
			f := fa
			if k%2 == 1 {
				f = fb
			}
			ev, err := q.SubmitWithFreq(0, f, func(h *sycl.Handler) {
				h.ParallelFor(256, kern, data)
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := ev.Wait(); err != nil {
				b.Fatal(err)
			}
		}
		total := dev.HW().Now()
		overhead := float64(dev.HW().ClockSetCount()) * spec.ClockSetOverheadSec
		overheadFrac = overhead / total
	}
	b.ReportMetric(100*overheadFrac, "clockset_overhead_%")
}

// BenchmarkModelTraining measures the training-phase cost itself (the
// deployment step of §3.2): collecting the micro-benchmark sweep and
// fitting the four Random Forest models.
func BenchmarkModelTraining(b *testing.B) {
	spec := hw.V100()
	for i := 0; i < b.N; i++ {
		if _, err := trainForest(spec); err != nil {
			b.Fatal(err)
		}
	}
}

func trainForest(spec *hw.Spec) (*model.Models, error) {
	ks, err := microbenchKernels()
	if err != nil {
		return nil, err
	}
	ts, err := model.CollectTraining(spec, ks, evalStride)
	if err != nil {
		return nil, err
	}
	return model.Train(spec, ts, model.AlgoForest)
}

// BenchmarkAdvisorInference measures one §6.2 prediction (feature
// extraction + four-model curve + frequency search) — the per-kernel
// compile-time cost of a target annotation.
func BenchmarkAdvisorInference(b *testing.B) {
	spec := hw.V100()
	m, err := trainForest(spec)
	if err != nil {
		b.Fatal(err)
	}
	adv := &model.Advisor{Models: m}
	bench, err := benchsuite.ByName("black_scholes")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := adv.AdviseCoreFreq(bench.Kernel, 1<<24, metrics.ES(50)); err != nil {
			b.Fatal(err)
		}
	}
}

func relErr(got, want float64) float64 {
	d := got - want
	if d < 0 {
		d = -d
	}
	return d / want
}

func microbenchKernels() ([]*kernelir.Kernel, error) {
	return microbench.Kernels(microbench.DefaultSet())
}

// BenchmarkAblation_FineVsCoarseGrained runs the §2.2 design-choice
// ablation: the best single application-wide frequency (exhaustive
// search) against SYnergy's per-kernel plans (model-driven and oracle),
// all targeting MIN_EDP on mini-CloverLeaf.
func BenchmarkAblation_FineVsCoarseGrained(b *testing.B) {
	spec := hw.V100()
	ks, err := microbenchKernels()
	if err != nil {
		b.Fatal(err)
	}
	adv, err := model.DefaultAdvisor(spec, ks, evalStride)
	if err != nil {
		b.Fatal(err)
	}
	var a *report.Ablation
	for i := 0; i < b.N; i++ {
		a, err = report.BuildAblation(report.AblationConfig{
			Spec: spec, App: apps.NewCloverLeaf(), Advisor: adv,
			LocalNx: 16384, LocalNy: 16384, Steps: 6,
			StateRows: 8, FunctionalCap: 64, FreqStride: 16,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*(1-a.CoarseEDP()/a.BaselineEDP()), "coarse_EDP_gain_%")
	b.ReportMetric(100*(1-a.FineEDP()/a.BaselineEDP()), "fine_EDP_gain_%")
	b.ReportMetric(100*(1-a.FineOracleEDP()/a.BaselineEDP()), "fine_oracle_EDP_gain_%")
}

// BenchmarkBaseline_OnlineGovernor contrasts SYnergy's static per-kernel
// prediction with the classic dynamic alternative: an online
// hill-climbing DVFS governor. It reports the cumulative EDP overhead
// each approach pays over the first 40 launches of matmul relative to
// the oracle optimum (the governor pays an exploration cost; the static
// plan pays only its one-shot prediction error).
func BenchmarkBaseline_OnlineGovernor(b *testing.B) {
	spec := hw.V100()
	bench, err := benchsuite.ByName("matmul")
	if err != nil {
		b.Fatal(err)
	}
	gt, err := model.GroundTruthSweep(spec, bench.Kernel, bench.CharItems)
	if err != nil {
		b.Fatal(err)
	}
	opt, err := gt.Select(metrics.MinEDP)
	if err != nil {
		b.Fatal(err)
	}
	m, err := trainForest(spec)
	if err != nil {
		b.Fatal(err)
	}
	adv := &model.Advisor{Models: m}
	staticFreq, err := adv.AdviseCoreFreq(bench.Kernel, int(bench.CharItems), metrics.MinEDP)
	if err != nil {
		b.Fatal(err)
	}
	staticPoint, _ := gt.PointAt(staticFreq)

	const launches = 40
	optObj := metrics.ObjectiveValue(metrics.MinEDP, opt)
	var govOverhead, staticOverhead float64
	for i := 0; i < b.N; i++ {
		g, err := governor.New(spec, metrics.MinEDP)
		if err != nil {
			b.Fatal(err)
		}
		cum := 0.0
		for l := 0; l < launches; l++ {
			f := g.Decide("matmul")
			p, ok := gt.PointAt(f)
			if !ok {
				b.Fatalf("governor chose unknown frequency %d", f)
			}
			cum += metrics.ObjectiveValue(metrics.MinEDP, p)
			if err := g.Observe("matmul", p.TimeSec, p.EnergyJ); err != nil {
				b.Fatal(err)
			}
		}
		govOverhead = 100 * (cum/(float64(launches)*optObj) - 1)
		staticObj := metrics.ObjectiveValue(metrics.MinEDP, staticPoint)
		staticOverhead = 100 * (staticObj/optObj - 1)
	}
	b.ReportMetric(govOverhead, "governor_overhead_%")
	b.ReportMetric(staticOverhead, "static_overhead_%")
}

// benchmarkSweepEngine drives one full-suite V100 characterisation
// through a fresh engine per iteration so every sweep is a cache miss.
func benchmarkSweepEngine(b *testing.B, newEngine func() *sweep.Engine) {
	spec := hw.V100()
	suite := benchsuite.All()
	b.ResetTimer()
	var evals int64
	for i := 0; i < b.N; i++ {
		eng := newEngine()
		err := eng.ForEach(len(suite), func(j int) error {
			_, err := eng.GroundTruth(spec, suite[j].Kernel, suite[j].CharItems)
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
		evals = eng.Evaluations()
	}
	b.ReportMetric(float64(evals), "sweeps")
}

// BenchmarkSweepSerial characterises the full suite on one worker: the
// historical serial path the engine replaced.
func BenchmarkSweepSerial(b *testing.B) {
	benchmarkSweepEngine(b, func() *sweep.Engine {
		return sweep.NewEngine(sweep.WithWorkers(1))
	})
}

// BenchmarkSweepPooled characterises the full suite on the default
// bounded worker pool (GOMAXPROCS workers).
func BenchmarkSweepPooled(b *testing.B) {
	benchmarkSweepEngine(b, func() *sweep.Engine { return sweep.NewEngine() })
}

// BenchmarkSweepMemoized re-requests an already-characterised suite:
// after a warm-up pass, every request is a cache hit.
func BenchmarkSweepMemoized(b *testing.B) {
	spec := hw.V100()
	suite := benchsuite.All()
	eng := sweep.NewEngine()
	if err := eng.Prefetch(spec, kernelsOf(suite), suite[0].CharItems); err != nil {
		b.Fatal(err)
	}
	// Warm the per-benchmark launch sizes too.
	for _, bm := range suite {
		if _, err := eng.GroundTruth(spec, bm.Kernel, bm.CharItems); err != nil {
			b.Fatal(err)
		}
	}
	warm := eng.Evaluations()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, bm := range suite {
			if _, err := eng.GroundTruth(spec, bm.Kernel, bm.CharItems); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	if eng.Evaluations() != warm {
		b.Fatalf("memoized pass evaluated %d new sweeps", eng.Evaluations()-warm)
	}
}

func kernelsOf(suite []*benchsuite.Benchmark) []*kernelir.Kernel {
	out := make([]*kernelir.Kernel, len(suite))
	for i := range suite {
		out[i] = suite[i].Kernel
	}
	return out
}
