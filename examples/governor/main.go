// Online-governor baseline: tune the median-filter kernel's frequency
// with a model-free hill-climbing DVFS controller and compare the
// trajectory against SYnergy's one-shot static prediction. The governor
// needs no training phase but pays an exploration cost on every new
// kernel — the tradeoff that motivates the paper's static approach.
//
// Run with: go run ./examples/governor
package main

import (
	"fmt"
	"log"

	"synergy/internal/benchsuite"
	"synergy/internal/governor"
	"synergy/internal/hw"
	"synergy/internal/metrics"
	"synergy/internal/microbench"
	"synergy/internal/model"
)

func main() {
	log.SetFlags(0)
	spec := hw.V100()
	bench, err := benchsuite.ByName("median")
	if err != nil {
		log.Fatal(err)
	}
	gt, err := model.GroundTruthSweep(spec, bench.Kernel, bench.CharItems)
	if err != nil {
		log.Fatal(err)
	}
	opt, err := gt.Select(metrics.MinEDP)
	if err != nil {
		log.Fatal(err)
	}

	// SYnergy: train once, predict once.
	kernels, err := microbench.Kernels(microbench.DefaultSet())
	if err != nil {
		log.Fatal(err)
	}
	adv, err := model.DefaultAdvisor(spec, kernels, 8)
	if err != nil {
		log.Fatal(err)
	}
	staticFreq, err := adv.AdviseCoreFreq(bench.Kernel, int(bench.CharItems), metrics.MinEDP)
	if err != nil {
		log.Fatal(err)
	}
	staticPoint, _ := gt.PointAt(staticFreq)

	// Governor: learn online from launch feedback.
	gov, err := governor.New(spec, metrics.MinEDP)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("median on %s — MIN_EDP (oracle optimum: %d MHz, EDP %.4g)\n\n",
		spec.Name, opt.FreqMHz, opt.EDP())
	fmt.Printf("%8s %9s %10s %10s\n", "launch", "freqMHz", "EDP", "vs opt%")
	optEDP := opt.EDP()
	for i := 1; ; i++ {
		f := gov.Decide("median")
		p, ok := gt.PointAt(f)
		if !ok {
			log.Fatalf("governor chose unsupported frequency %d", f)
		}
		if err := gov.Observe("median", p.TimeSec, p.EnergyJ); err != nil {
			log.Fatal(err)
		}
		if i <= 10 || gov.Settled("median") {
			fmt.Printf("%8d %9d %10.4g %9.1f%%\n", i, f, p.EDP(), 100*(p.EDP()/optEDP-1))
		}
		if gov.Settled("median") || i >= 200 {
			fmt.Printf("\ngovernor settled after %d launches\n", gov.Launches("median"))
			break
		}
	}
	fmt.Printf("static SYnergy prediction: %d MHz, EDP %.4g (%.1f%% vs opt) — zero exploration launches\n",
		staticFreq, staticPoint.EDP(), 100*(staticPoint.EDP()/optEDP-1))
}
