// Heterogeneous portability: the same SYnergy code path — queue,
// frequency scaling, energy profiling, ES_50 target selection — runs
// unchanged on an NVIDIA V100 (NVML), an AMD MI100 (ROCm SMI) and an
// Intel Xeon package (RAPL/cpufreq), closing the portability gap the
// paper describes in §2.1.
//
// Run with: go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"

	"synergy/internal/benchsuite"
	"synergy/internal/core"
	"synergy/internal/hw"
	"synergy/internal/metrics"
	"synergy/internal/model"
	"synergy/internal/power"
	"synergy/internal/sycl"
)

func main() {
	log.SetFlags(0)
	bench, err := benchsuite.ByName("black_scholes")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-18s %-8s %10s %10s %12s %9s %9s\n",
		"device", "backend", "baseMHz", "ES50MHz", "energy(J)", "saving%", "loss%")
	for _, spec := range []*hw.Spec{hw.V100(), hw.MI100(), hw.Xeon8160()} {
		dev := sycl.NewDevice(spec)
		pm, err := power.NewPrivilegedManager(dev.HW())
		if err != nil {
			log.Fatal(err)
		}
		q := core.NewQueue(dev, pm)
		q.SetFunctionalCap(1 << 12)

		inst, err := bench.NewInstance(1 << 12)
		if err != nil {
			log.Fatal(err)
		}
		const items = 1 << 24
		launch := func() (float64, float64, int) {
			ev, err := q.Submit(func(h *sycl.Handler) {
				h.ParallelFor(items, bench.Kernel, inst.Args)
			})
			if err != nil {
				log.Fatal(err)
			}
			rec, err := ev.Profiling()
			if err != nil {
				log.Fatal(err)
			}
			return rec.End - rec.Start, rec.EnergyJ, rec.CoreMHz
		}

		// Baseline at default clocks.
		baseT, baseE, baseF := launch()

		// Ground-truth ES_50 selection for this device (the per-device
		// energy models of §6 would predict this; here we show the
		// portable mechanism with the exact selection).
		sweep, err := model.GroundTruthSweep(spec, bench.Kernel, items)
		if err != nil {
			log.Fatal(err)
		}
		sel, err := sweep.Select(metrics.ES(50))
		if err != nil {
			log.Fatal(err)
		}
		if err := pm.SetCoreFreq(sel.FreqMHz); err != nil {
			log.Fatal(err)
		}
		esT, esE, esF := launch()
		if esF != sel.FreqMHz {
			log.Fatalf("%s: ran at %d, wanted %d", spec.Name, esF, sel.FreqMHz)
		}
		fmt.Printf("%-18s %-8s %10d %10d %12.3f %9.1f %9.1f\n",
			spec.Name, pm.VendorName(), baseF, esF, esE,
			100*(1-esE/baseE), 100*(esT/baseT-1))
		if err := pm.ResetCoreFreq(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("\nsame API, three vendor backends (NVML, ROCm SMI, RAPL/cpufreq)")
}
