// Pareto explorer: characterise a selection of the 23-benchmark suite on
// the V100 and the MI100, printing the speedup/normalised-energy Pareto
// fronts (the Figs. 2/7/8 analysis) and what each energy target selects.
//
// Run with: go run ./examples/pareto [-device v100|a100|mi100]
package main

import (
	"flag"
	"fmt"
	"log"

	"synergy/internal/benchsuite"
	"synergy/internal/hw"
	"synergy/internal/metrics"
	"synergy/internal/model"
)

func main() {
	log.SetFlags(0)
	device := flag.String("device", "v100", "device to characterise on")
	flag.Parse()

	spec, err := hw.SpecByName(*device)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Pareto exploration on %s (baseline %d MHz)\n\n", spec.Name, spec.BaselineCoreMHz())

	for _, name := range []string{"matmul", "sobel3", "median", "lin_reg_coeff", "black_scholes", "nbody"} {
		b, err := benchsuite.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		sweep, err := model.GroundTruthSweep(spec, b.Kernel, b.CharItems)
		if err != nil {
			log.Fatal(err)
		}
		base := sweep.BaselinePoint()
		front := sweep.ParetoFront()

		fmt.Printf("%s — Pareto front (%d of %d configurations):\n", name, len(front), len(sweep.Points))
		fmt.Printf("  %8s %9s %12s\n", "freqMHz", "speedup", "normEnergy")
		stride := len(front)/8 + 1
		for i := 0; i < len(front); i += stride {
			p := front[i]
			fmt.Printf("  %8d %9.3f %12.3f\n", p.FreqMHz, base.TimeSec/p.TimeSec, p.EnergyJ/base.EnergyJ)
		}

		for _, tgt := range []metrics.Target{metrics.MinEDP, metrics.ES(50), metrics.PL(50)} {
			p, err := sweep.Select(tgt)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-8s -> %4d MHz: %5.1f%% energy saving, %5.1f%% perf loss\n",
				tgt, p.FreqMHz, 100*(1-p.EnergyJ/base.EnergyJ), 100*(p.TimeSec/base.TimeSec-1))
		}
		fmt.Println()
	}
}
