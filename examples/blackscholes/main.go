// Black-Scholes energy tradeoffs: the Listing-3 flow — train the energy
// models, then submit the same option-pricing kernel once per energy
// target (MIN_EDP, MIN_ED2P, ES_x, PL_x) and compare the measured energy
// and time against the default configuration. This walks the whole
// SYnergy pipeline: compiler feature extraction → model inference →
// per-kernel frequency scaling → fine-grained energy profiling.
//
// Run with: go run ./examples/blackscholes
package main

import (
	"fmt"
	"log"

	"synergy/internal/benchsuite"
	"synergy/internal/core"
	"synergy/internal/hw"
	"synergy/internal/metrics"
	"synergy/internal/microbench"
	"synergy/internal/model"
	"synergy/internal/power"
	"synergy/internal/sycl"
)

func main() {
	log.SetFlags(0)
	spec := hw.V100()

	// Train the four per-device models on the micro-benchmark suite
	// (the deployment step of §3.2).
	fmt.Println("training energy models on the micro-benchmark suite...")
	kernels, err := microbench.Kernels(microbench.DefaultSet())
	if err != nil {
		log.Fatal(err)
	}
	advisor, err := model.DefaultAdvisor(spec, kernels, 4)
	if err != nil {
		log.Fatal(err)
	}

	bench, err := benchsuite.ByName("black_scholes")
	if err != nil {
		log.Fatal(err)
	}
	inst, err := bench.NewInstance(1 << 12)
	if err != nil {
		log.Fatal(err)
	}

	dev := sycl.NewDevice(spec)
	pm, err := power.NewPrivilegedManager(dev.HW())
	if err != nil {
		log.Fatal(err)
	}
	q := core.NewQueue(dev, pm)
	q.SetAdvisor(advisor)
	q.SetFunctionalCap(1 << 12) // virtual launch is large; compute a prefix

	const virtualItems = 1 << 24
	run := func(submit func(cg sycl.CommandGroup) (*sycl.Event, error)) (timeSec, energyJ float64) {
		ev, err := submit(func(h *sycl.Handler) {
			h.ParallelFor(virtualItems, bench.Kernel, inst.Args)
		})
		if err != nil {
			log.Fatal(err)
		}
		rec, err := ev.Profiling()
		if err != nil {
			log.Fatal(err)
		}
		return rec.End - rec.Start, rec.EnergyJ
	}

	// Baseline: default application clocks.
	baseT, baseE := run(q.Submit)
	fmt.Printf("\n%-10s %9s %11s %9s %9s\n", "target", "time(ms)", "energy(J)", "saving%", "loss%")
	fmt.Printf("%-10s %9.2f %11.3f %9s %9s\n", "default", 1e3*baseT, baseE, "-", "-")

	for _, tgt := range []metrics.Target{
		metrics.MinEDP, metrics.MinED2P,
		metrics.ES(25), metrics.ES(50), metrics.ES(75),
		metrics.PL(25), metrics.PL(50), metrics.PL(75),
	} {
		tgt := tgt
		t, e := run(func(cg sycl.CommandGroup) (*sycl.Event, error) {
			return q.SubmitWithTarget(tgt, cg)
		})
		fmt.Printf("%-10s %9.2f %11.3f %9.1f %9.1f\n", tgt.String(), 1e3*t, e,
			100*(1-e/baseE), 100*(t/baseT-1))
	}

	if err := inst.Verify(); err != nil {
		// The functional cap computes only a prefix; verify that prefix.
		fmt.Printf("\nnote: %v (expected beyond the functional cap)\n", err)
	} else {
		fmt.Println("\noutput verified against the reference prices")
	}
}
