// Cluster example: run mini-CloverLeaf as a SYCL+MPI job on a simulated
// 4-node × 4-GPU cluster through the SLURM layer, showing the nvgpufreq
// plugin's privilege window: the job runs as a regular user, scales each
// kernel's frequency for the ES_50 target, and the epilogue restores the
// nodes to a clean state.
//
// Run with: go run ./examples/cluster
package main

import (
	"fmt"
	"log"

	"synergy/internal/apps"
	"synergy/internal/hw"
	"synergy/internal/metrics"
	"synergy/internal/microbench"
	"synergy/internal/model"
	"synergy/internal/mpi"
	"synergy/internal/slurm"
)

func main() {
	log.SetFlags(0)
	spec := hw.V100()

	// Four 4-GPU nodes, nvgpufreq GRES + plugin (the §7.2 deployment).
	var nodes []*slurm.Node
	for i := 0; i < 4; i++ {
		nodes = append(nodes, slurm.NewNode(fmt.Sprintf("node%02d", i), spec, 4, slurm.GresNVGpuFreq))
	}
	cluster := slurm.NewCluster(nodes...)
	cluster.RegisterPlugin(&slurm.NVGpuFreqPlugin{Controller: cluster})

	// Train the models and plan ES_50 per kernel.
	kernels, err := microbench.Kernels(microbench.DefaultSet())
	if err != nil {
		log.Fatal(err)
	}
	advisor, err := model.DefaultAdvisor(spec, kernels, 8)
	if err != nil {
		log.Fatal(err)
	}
	app := apps.NewCloverLeaf()
	const nx, ny = 16384, 16384
	plan, err := apps.PlanFromAdvisor(app, advisor, nx*ny, metrics.ES(50))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("per-kernel ES_50 frequency plan:")
	for _, k := range app.Kernels {
		fmt.Printf("  %-20s -> %d MHz\n", k.Name, plan[k.Name])
	}

	submit := func(label string, p apps.FreqPlan) *apps.RunResult {
		var result *apps.RunResult
		jobRes, err := cluster.Submit(&slurm.Job{
			Name: "cloverleaf-" + label, User: "alice",
			NumNodes: 4, Exclusive: true,
			Gres: map[slurm.GRES]bool{slurm.GresNVGpuFreq: true},
			Run: func(alloc *slurm.Allocation) error {
				res, err := apps.Run(app, apps.RunConfig{
					Spec: spec, Nodes: 4, GPUsPerNode: 4,
					LocalNx: nx, LocalNy: ny, Steps: 10,
					StateRows: 8, FunctionalCap: 512,
					Plan: p, Net: mpi.EDRFabric(),
					Devices: alloc.GPUs(), User: "alice",
				})
				if err != nil {
					return err
				}
				result = res
				return nil
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		if jobRes.Err != nil {
			log.Fatal(jobRes.Err)
		}
		fmt.Printf("%-8s: %2d GPUs, %.4f s, %.1f J (job accounting: %.1f J)\n",
			label, result.Ranks, result.TimeSec, result.EnergyJ, jobRes.EnergyJ)
		return result
	}

	fmt.Println("\nsubmitting jobs (16 GPUs each):")
	base := submit("default", nil)
	es50 := submit("ES_50", plan)
	fmt.Printf("\nES_50 saves %.1f%% energy at %.1f%% time cost\n",
		100*(1-es50.EnergyJ/base.EnergyJ), 100*(es50.TimeSec/base.TimeSec-1))

	// The epilogue restored every GPU: default clocks, privileges gone.
	for _, n := range cluster.Nodes() {
		for _, g := range n.GPUs {
			if g.AppClockMHz() != g.Spec().DefaultCoreMHz {
				log.Fatalf("node %s left a GPU at %d MHz", n.Name, g.AppClockMHz())
			}
		}
	}
	fmt.Println("epilogue verified: all GPUs back at default clocks, privileges restored")
}
