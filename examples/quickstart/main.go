// Quickstart: the Listing-1 flow of the paper — create a synergy queue
// on a (simulated) V100, submit a SAXPY kernel, wait for it, and query
// the fine-grained kernel energy and the coarse-grained device energy.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"synergy/internal/core"
	"synergy/internal/hw"
	"synergy/internal/kernelir"
	"synergy/internal/power"
	"synergy/internal/sycl"
)

func main() {
	log.SetFlags(0)

	// Device + vendor-neutral power manager (NVML underneath).
	dev := sycl.NewDevice(hw.V100())
	pm, err := power.NewPrivilegedManager(dev.HW())
	if err != nil {
		log.Fatal(err)
	}

	// synergy::queue q{gpu_selector_v};
	q := core.NewQueue(dev, pm)

	// Build the SAXPY kernel: z = a*x + y.
	b := kernelir.NewBuilder("saxpy")
	xBuf := b.BufferF32("x", kernelir.Read)
	yBuf := b.BufferF32("y", kernelir.Read)
	zBuf := b.BufferF32("z", kernelir.Write)
	a := b.ScalarF("a")
	gid := b.GlobalID()
	b.StoreF(zBuf, gid, b.AddF(b.MulF(a, b.LoadF(xBuf, gid)), b.LoadF(yBuf, gid)))
	kernel := b.MustBuild()

	// Host data.
	const n = 1 << 20
	x := make([]float32, n)
	y := make([]float32, n)
	z := make([]float32, n)
	for i := range x {
		x[i] = float32(i % 100)
		y[i] = 1
	}
	args := kernelir.Args{
		F32:     map[string][]float32{"x": x, "y": y, "z": z},
		ScalarF: map[string]float64{"a": 2},
	}

	// event e = q.submit(...); e.wait_and_throw();
	ev, err := q.Submit(func(h *sycl.Handler) {
		h.ParallelFor(n, kernel, args)
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := ev.Wait(); err != nil {
		log.Fatal(err)
	}

	// double kernel_energy = q.kernel_energy_consumption(e);
	kernelEnergy, err := q.KernelEnergyConsumption(ev)
	if err != nil {
		log.Fatal(err)
	}
	// double device_energy = q.device_energy_consumption();
	deviceEnergy := q.DeviceEnergyConsumption()

	rec, _ := ev.Profiling()
	fmt.Printf("kernel %q on %s\n", rec.Name, dev.Name())
	fmt.Printf("  ran at %d MHz for %.3f ms\n", rec.CoreMHz, 1e3*(rec.End-rec.Start))
	fmt.Printf("  kernel energy (sampled):  %.4f J\n", kernelEnergy)
	fmt.Printf("  kernel energy (true):     %.4f J\n", rec.EnergyJ)
	fmt.Printf("  device energy since queue construction: %.4f J\n", deviceEnergy)
	fmt.Printf("  z[42] = %.1f (expected %.1f)\n", z[42], 2*float32(42)+1)
	if d := rec.End - rec.Start; d < 0.015 {
		fmt.Printf("\nnote: this kernel runs for %.3f ms, shorter than the ~15 ms NVML\n", 1e3*d)
		fmt.Println("power-sampling period, so the sampled estimate is unreliable — the")
		fmt.Println("fine-grained profiling limitation the paper discusses in §4.4.")
		fmt.Println("Profile longer kernels (or use the coarse-grained device window).")
	}
}
