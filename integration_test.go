// Integration tests: cross-package flows exercising the whole SYnergy
// stack the way a user would — train, annotate, submit, measure, and
// schedule — complementing the per-package unit tests.
package synergy

import (
	"math"
	"testing"

	"synergy/internal/apps"
	"synergy/internal/benchsuite"
	"synergy/internal/core"
	"synergy/internal/hw"
	"synergy/internal/metrics"
	"synergy/internal/model"
	"synergy/internal/mpi"
	"synergy/internal/power"
	"synergy/internal/slurm"
	"synergy/internal/sycl"
)

// trainAdvisor trains the default Random-Forest advisor once per test
// binary run.
func trainAdvisor(t *testing.T, spec *hw.Spec) *model.Advisor {
	t.Helper()
	ks, err := microbenchKernels()
	if err != nil {
		t.Fatal(err)
	}
	adv, err := model.DefaultAdvisor(spec, ks, 8)
	if err != nil {
		t.Fatal(err)
	}
	return adv
}

// TestEndToEndTargetSubmission walks the full Listing-3 pipeline on a
// real suite benchmark: train → annotate with ES_50 → submit → the
// measured energy beats the default run of the same kernel.
func TestEndToEndTargetSubmission(t *testing.T) {
	spec := hw.V100()
	adv := trainAdvisor(t, spec)

	bench, err := benchsuite.ByName("matmul")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := bench.NewInstance(1 << 10)
	if err != nil {
		t.Fatal(err)
	}

	dev := sycl.NewDevice(spec)
	pm, err := power.NewPrivilegedManager(dev.HW())
	if err != nil {
		t.Fatal(err)
	}
	q := core.NewQueue(dev, pm)
	q.SetAdvisor(adv)
	q.SetFunctionalCap(inst.Items)

	const virtualItems = 1 << 24
	launch := func(submit func(cg sycl.CommandGroup) (*sycl.Event, error)) hw.KernelRecord {
		ev, err := submit(func(h *sycl.Handler) {
			h.ParallelFor(virtualItems, bench.Kernel, inst.Args)
		})
		if err != nil {
			t.Fatal(err)
		}
		rec, err := ev.Profiling()
		if err != nil {
			t.Fatal(err)
		}
		return rec
	}

	base := launch(q.Submit)
	es50 := launch(func(cg sycl.CommandGroup) (*sycl.Event, error) {
		return q.SubmitWithTarget(metrics.ES(50), cg)
	})

	if es50.CoreMHz >= base.CoreMHz {
		t.Errorf("ES_50 ran at %d MHz, expected below default %d", es50.CoreMHz, base.CoreMHz)
	}
	saving := 1 - es50.EnergyJ/base.EnergyJ
	if saving < 0.05 {
		t.Errorf("ES_50 saved only %.1f%% energy on matmul", 100*saving)
	}
	// The kernel still computed correct results.
	if err := inst.Verify(); err != nil {
		t.Errorf("output verification failed: %v", err)
	}
}

// TestPortabilityAcrossVendors runs the same SYnergy code path on the
// NVIDIA, AMD and Intel-CPU backends — the §4 portability claim (and
// the §2.1 gap the paper calls out: no portable frequency scaling
// across CPUs, GPUs and accelerators).
func TestPortabilityAcrossVendors(t *testing.T) {
	bench, err := benchsuite.ByName("median")
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []*hw.Spec{hw.V100(), hw.MI100(), hw.Xeon8160()} {
		inst, err := bench.NewInstance(512)
		if err != nil {
			t.Fatal(err)
		}
		dev := sycl.NewDevice(spec)
		pm, err := power.NewPrivilegedManager(dev.HW())
		if err != nil {
			t.Fatal(err)
		}
		if pm.VendorName() != spec.Vendor.String() {
			t.Fatalf("%s: wrong backend %s", spec.Name, pm.VendorName())
		}
		q := core.NewQueue(dev, pm)
		low := spec.CoreFreqsMHz[len(spec.CoreFreqsMHz)/2]
		ev, err := q.SubmitWithFreq(0, low, func(h *sycl.Handler) {
			h.ParallelFor(inst.Items, bench.Kernel, inst.Args)
		})
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		rec, err := ev.Profiling()
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if rec.CoreMHz != low {
			t.Errorf("%s: ran at %d, want %d", spec.Name, rec.CoreMHz, low)
		}
		if err := inst.Verify(); err != nil {
			t.Errorf("%s: %v", spec.Name, err)
		}
	}
}

// TestDeviceEnergyDecomposition checks the §4.2 coarse/fine relation:
// the device window energy equals the kernel energies plus the idle
// energy between them (within sampling error).
func TestDeviceEnergyDecomposition(t *testing.T) {
	spec := hw.V100()
	dev := sycl.NewDevice(spec)
	pm, err := power.NewPrivilegedManager(dev.HW())
	if err != nil {
		t.Fatal(err)
	}
	q := core.NewQueue(dev, pm)
	q.SetFunctionalCap(1 << 10)

	bench, err := benchsuite.ByName("vec_add")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := bench.NewInstance(1 << 10)
	if err != nil {
		t.Fatal(err)
	}

	kernelSum := 0.0
	busy := 0.0
	const launches = 5
	for i := 0; i < launches; i++ {
		ev, err := q.Submit(func(h *sycl.Handler) {
			h.ParallelFor(1<<26, bench.Kernel, inst.Args)
		})
		if err != nil {
			t.Fatal(err)
		}
		rec, err := ev.Profiling()
		if err != nil {
			t.Fatal(err)
		}
		kernelSum += rec.EnergyJ
		busy += rec.End - rec.Start
		dev.HW().AdvanceIdle(0.25)
	}
	total := dev.HW().Now()
	idleE := (total - busy) * spec.IdlePowerW
	device := q.DeviceEnergyConsumption()
	want := kernelSum + idleE
	if rel := math.Abs(device-want) / want; rel > 0.05 {
		t.Fatalf("device energy %.2f J, kernels+idle %.2f J (%.1f%% apart)", device, want, 100*rel)
	}
}

// TestClusterDeniesUnprivilegedScaling runs the MPI application through
// SLURM as a regular user WITHOUT the nvgpufreq GRES: the per-kernel
// frequency plan is denied (permission), the job degrades to default
// clocks — completing with every denial recorded — proving the plugin
// gate is what enables SYnergy's savings on shared clusters.
func TestClusterDeniesUnprivilegedScaling(t *testing.T) {
	spec := hw.V100()
	node := slurm.NewNode("n0", spec, 2, slurm.GresNVGpuFreq)
	cluster := slurm.NewCluster(node)
	cluster.RegisterPlugin(&slurm.NVGpuFreqPlugin{Controller: cluster})

	app := apps.NewMiniWeather()
	plan := apps.FreqPlan{}
	for _, k := range app.Kernels {
		plan[k.Name] = spec.CoreFreqsMHz[10]
	}
	run := func(gres map[slurm.GRES]bool) *apps.RunResult {
		var rr *apps.RunResult
		res, err := cluster.Submit(&slurm.Job{
			Name: "mw", User: "alice", NumNodes: 1, Exclusive: true, Gres: gres,
			Run: func(alloc *slurm.Allocation) error {
				var err error
				rr, err = apps.Run(app, apps.RunConfig{
					Spec: spec, Nodes: 1, GPUsPerNode: 2,
					LocalNx: 48, LocalNy: 48, Steps: 2,
					Plan: plan, Net: mpi.EDRFabric(),
					Devices: alloc.GPUs(), User: "alice",
				})
				return err
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Err != nil {
			t.Fatalf("job failed: %v", res.Err)
		}
		return rr
	}

	unpriv := run(nil)
	if len(unpriv.Degradations) == 0 {
		t.Fatal("unprivileged job recorded no degradations without the nvgpufreq GRES")
	}
	if unpriv.ClockSets != 0 {
		t.Fatalf("unprivileged job changed clocks %d times", unpriv.ClockSets)
	}
	priv := run(map[slurm.GRES]bool{slurm.GresNVGpuFreq: true})
	if len(priv.Degradations) != 0 {
		t.Fatalf("privileged job degraded: %+v", priv.Degradations)
	}
	if priv.ClockSets == 0 {
		t.Fatal("privileged job never scaled frequencies")
	}
}

// TestAdvisorPredictionsWithinTable checks every (benchmark, target)
// advisor prediction is a supported frequency — the contract the queue
// relies on.
func TestAdvisorPredictionsWithinTable(t *testing.T) {
	spec := hw.V100()
	adv := trainAdvisor(t, spec)
	for _, bench := range benchsuite.All() {
		for _, tgt := range metrics.StandardTargets {
			f, err := adv.AdviseCoreFreq(bench.Kernel, int(bench.CharItems), tgt)
			if err != nil {
				t.Fatalf("%s/%s: %v", bench.Name, tgt, err)
			}
			if !spec.SupportsCoreFreq(f) {
				t.Errorf("%s/%s: advised unsupported %d MHz", bench.Name, tgt, f)
			}
		}
	}
}

// TestSchedulerAdvisedTargetEndToEnd closes the scheduler loop: under a
// tight cluster power budget the EnergyAdvicePlugin hints an ES target,
// the job builds its per-kernel plan from the hint, and the run saves
// energy relative to the unadvised baseline.
func TestSchedulerAdvisedTargetEndToEnd(t *testing.T) {
	spec := hw.V100()
	adv := trainAdvisor(t, spec)
	app := apps.NewMiniWeather()

	runWithBudget := func(budget float64) (*apps.RunResult, bool) {
		node := slurm.NewNode("n0", spec, 4, slurm.GresNVGpuFreq)
		cluster := slurm.NewCluster(node)
		cluster.RegisterPlugin(&slurm.NVGpuFreqPlugin{Controller: cluster})
		cluster.RegisterPlugin(&slurm.EnergyAdvicePlugin{ClusterBudgetW: budget})
		var result *apps.RunResult
		advised := false
		res, err := cluster.Submit(&slurm.Job{
			Name: "mw", User: "alice", NumNodes: 1, Exclusive: true,
			Gres: map[slurm.GRES]bool{slurm.GresNVGpuFreq: true},
			Run: func(ctx *slurm.Allocation) error {
				var plan apps.FreqPlan
				if tgt, ok, err := slurm.AdvisedTarget(ctx); err != nil {
					return err
				} else if ok {
					advised = true
					plan, err = apps.PlanFromAdvisor(app, adv, 16384*16384, tgt)
					if err != nil {
						return err
					}
				}
				r, err := apps.Run(app, apps.RunConfig{
					Spec: spec, Nodes: 1, GPUsPerNode: 4,
					LocalNx: 16384, LocalNy: 16384, Steps: 5,
					StateRows: 8, FunctionalCap: 64,
					Plan: plan, Net: mpi.EDRFabric(),
					Devices: ctx.GPUs(), User: "alice",
				})
				if err != nil {
					return err
				}
				result = r
				return nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		return result, advised
	}

	base, advised := runWithBudget(5000) // plenty of budget
	if advised {
		t.Fatal("advice given under a loose budget")
	}
	tight, advised := runWithBudget(800) // 4 GPUs x 300 W >> 800 W
	if !advised {
		t.Fatal("no advice under a tight budget")
	}
	saving := 1 - tight.EnergyJ/base.EnergyJ
	if saving < 0.08 {
		t.Errorf("advised run saved only %.1f%% energy", 100*saving)
	}
}
