// Package synergy is a from-scratch Go reproduction of "SYnergy:
// Fine-grained Energy-Efficient Heterogeneous Computing for Scalable
// Energy Saving" (SC '23): a SYCL-style energy-aware runtime with
// per-kernel DVFS targets, the compiler feature-extraction pass, the
// machine-learning frequency models, the SLURM nvgpufreq plugin and the
// multi-node evaluation — all running on a simulated GPU/cluster
// substrate (see DESIGN.md for the substitution rationale).
//
// The public surface lives in the internal packages (this module is a
// self-contained research artifact); bench_test.go regenerates every
// table and figure of the paper's evaluation.
package synergy
