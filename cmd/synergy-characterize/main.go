// Command synergy-characterize sweeps benchmarks across a device's
// frequency table and prints the speedup / normalised-energy
// characterisation with the Pareto front (the data behind Figs. 2, 7, 8)
// together with every standard energy-target selection.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"synergy/internal/benchsuite"
	"synergy/internal/hw"
	"synergy/internal/metrics"
	"synergy/internal/model"
	"synergy/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("synergy-characterize: ")
	device := flag.String("device", "v100", "target device (v100, a100, mi100)")
	benchArg := flag.String("bench", "all", "comma-separated benchmark names, or 'all'")
	full := flag.Bool("full", false, "print the full sweep instead of a sampled series")
	flag.Parse()

	spec, err := hw.SpecByName(*device)
	if err != nil {
		log.Fatal(err)
	}
	var names []string
	if *benchArg == "all" {
		names = benchsuite.Names()
	} else {
		names = strings.Split(*benchArg, ",")
	}

	for _, name := range names {
		c, err := report.BuildCharacterization(spec, name)
		if err != nil {
			log.Fatal(err)
		}
		if *full {
			fmt.Printf("%s on %s (full sweep)\n", c.Benchmark, c.Device)
			fmt.Println("freqMHz speedup normEnergy")
			for _, p := range c.Points {
				fmt.Printf("%7d %7.4f %10.4f\n", p.FreqMHz, p.Speedup, p.NormEnergy)
			}
		} else {
			fmt.Println(c.Render())
		}
		printSelections(spec, name)
	}
}

func printSelections(spec *hw.Spec, name string) {
	b, err := benchsuite.ByName(name)
	if err != nil {
		log.Fatal(err)
	}
	sweep, err := model.GroundTruthSweep(spec, b.Kernel, b.CharItems)
	if err != nil {
		log.Fatal(err)
	}
	base := sweep.BaselinePoint()
	fmt.Println("  target selections:")
	for _, tgt := range metrics.StandardTargets {
		p, err := sweep.Select(tgt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("    %-10s -> %4d MHz (saving %5.1f%%, loss %5.1f%%)\n",
			tgt, p.FreqMHz, 100*(1-p.EnergyJ/base.EnergyJ), 100*(p.TimeSec/base.TimeSec-1))
	}
	fmt.Println()
}
