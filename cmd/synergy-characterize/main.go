// Command synergy-characterize sweeps benchmarks across a device's
// frequency table and prints the speedup / normalised-energy
// characterisation with the Pareto front (the data behind Figs. 2, 7, 8)
// together with every standard energy-target selection.
//
// All ground truth flows through the shared sweep engine, so each
// (device, benchmark) sweep is computed exactly once per process: the
// characterisation and the target-selection section reuse the same
// memoized sweep (historically they each recomputed it from scratch).
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"sync"

	"synergy/internal/benchsuite"
	"synergy/internal/hw"
	"synergy/internal/metrics"
	"synergy/internal/report"
	"synergy/internal/sweep"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("synergy-characterize: ")
	device := flag.String("device", "v100", "target device ("+strings.Join(hw.BuiltinNames(), ", ")+")")
	benchArg := flag.String("bench", "all", "comma-separated benchmark names, or 'all'")
	full := flag.Bool("full", false, "print the full sweep instead of a sampled series")
	flag.Parse()

	spec, err := hw.SpecByName(*device)
	if err != nil {
		log.Fatal(err)
	}
	var names []string
	if *benchArg == "all" {
		names = benchsuite.Names()
	} else {
		names = strings.Split(*benchArg, ",")
	}

	// Count engine evaluations per content key: the assertion below
	// proves the duplicate-computation bug (characterisation + selections
	// each sweeping) cannot reappear.
	var (
		mu    sync.Mutex
		evals = map[sweep.Key]int{}
	)
	eng := sweep.Shared()
	eng.SetHook(func(k sweep.Key) {
		mu.Lock()
		evals[k]++
		mu.Unlock()
	})

	for _, name := range names {
		c, err := report.BuildCharacterization(spec, name)
		if err != nil {
			log.Fatal(err)
		}
		if *full {
			fmt.Printf("%s on %s (full sweep)\n", c.Benchmark, c.Device)
			fmt.Println("freqMHz speedup normEnergy")
			for _, p := range c.Points {
				fmt.Printf("%7d %7.4f %10.4f\n", p.FreqMHz, p.Speedup, p.NormEnergy)
			}
		} else {
			fmt.Println(c.Render())
		}
		printSelections(spec, name)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(evals) != len(names) {
		log.Fatalf("sweep engine evaluated %d distinct sweeps for %d benchmarks", len(evals), len(names))
	}
	for k, n := range evals {
		if n != 1 {
			log.Fatalf("sweep %s evaluated %d times, want exactly once", k, n)
		}
	}
}

// printSelections reports the standard target selections. The sweep
// request is a cache hit: the engine already computed it for the
// characterisation of the same benchmark.
func printSelections(spec *hw.Spec, name string) {
	b, err := benchsuite.ByName(name)
	if err != nil {
		log.Fatal(err)
	}
	sw, err := sweep.GroundTruth(spec, b.Kernel, b.CharItems)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  target selections:")
	for _, tgt := range metrics.StandardTargets {
		p, err := sw.Select(tgt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("    %-10s -> %4d MHz (saving %5.1f%%, loss %5.1f%%)\n",
			tgt, p.FreqMHz, sw.EnergySavingPct(p), sw.PerfLossPct(p))
	}
	fmt.Println()
}
