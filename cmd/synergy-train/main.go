// Command synergy-train runs the training phase of §6.1 for one device:
// it sweeps the micro-benchmark suite across the frequency table, builds
// the four single-target models with every applicable algorithm, and
// reports in-sample fit quality. With -json it dumps the training set
// for external analysis.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"synergy/internal/hw"
	"synergy/internal/microbench"
	"synergy/internal/ml"
	"synergy/internal/model"
	"synergy/internal/sweep"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("synergy-train: ")
	device := flag.String("device", "v100", "target device ("+strings.Join(hw.BuiltinNames(), ", ")+")")
	stride := flag.Int("stride", 4, "frequency-table stride for the training sweep")
	jsonOut := flag.String("json", "", "write the training set to this file as JSON")
	saveModels := flag.String("save", "", "write the trained model bundle (chosen with -algo) to this file")
	algo := flag.String("algo", model.AlgoForest, "algorithm for the saved bundle")
	flag.Parse()

	spec, err := hw.SpecByName(*device)
	if err != nil {
		log.Fatal(err)
	}
	kernels, err := microbench.Kernels(microbench.DefaultSet())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Training on %s: %d micro-benchmarks, frequency stride %d\n",
		spec.Name, len(kernels), *stride)

	ts, err := model.CollectTraining(spec, kernels, *stride)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Collected %d samples (T = (k, f, e, t, edp, ed2p)) via %d pooled sweeps\n",
		len(ts.Samples), sweep.Shared().Evaluations())

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			log.Fatal(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(ts); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Training set written to %s\n", *jsonOut)
	}

	if *saveModels != "" {
		m, err := model.Train(spec, ts, *algo)
		if err != nil {
			log.Fatal(err)
		}
		f, err := os.Create(*saveModels)
		if err != nil {
			log.Fatal(err)
		}
		if err := model.SaveModels(f, m); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s model bundle written to %s\n", *algo, *saveModels)
	}

	fmt.Println("\nIn-sample fit (R^2) per algorithm and target:")
	fmt.Printf("%-14s %10s %10s %10s %10s\n", "Algorithm", "time", "energy", "EDP", "ED2P")
	for _, algo := range model.AllAlgos {
		m, err := model.Train(spec, ts, algo)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %10.4f %10.4f %10.4f %10.4f\n", algo,
			fitR2(ts, m, targetTime), fitR2(ts, m, targetEnergy),
			fitR2(ts, m, targetEDP), fitR2(ts, m, targetED2P))
	}
}

type targetSel int

const (
	targetTime targetSel = iota
	targetEnergy
	targetEDP
	targetED2P
)

// fitR2 measures in-sample R^2 of one trained model by re-predicting the
// training samples through the public prediction path.
func fitR2(ts *model.TrainingSet, m *model.Models, sel targetSel) float64 {
	byKernel := map[string][]int{}
	for i, s := range ts.Samples {
		byKernel[s.Kernel] = append(byKernel[s.Kernel], i)
	}
	var actual, pred []float64
	for _, idxs := range byKernel {
		first := ts.Samples[idxs[0]]
		curve := m.PredictCurve(first.Features)
		byFreq := map[int]model.PredictedPoint{}
		for _, p := range curve {
			byFreq[p.FreqMHz] = p
		}
		for _, i := range idxs {
			s := ts.Samples[i]
			p, ok := byFreq[s.FreqMHz]
			if !ok {
				continue
			}
			switch sel {
			case targetTime:
				actual = append(actual, s.TimeNs)
				pred = append(pred, p.TimeNs)
			case targetEnergy:
				actual = append(actual, s.EnergyNanoJ)
				pred = append(pred, p.EnergyNanoJ)
			case targetEDP:
				actual = append(actual, s.EDP())
				pred = append(pred, p.EDPPred)
			case targetED2P:
				actual = append(actual, s.ED2P())
				pred = append(pred, p.ED2PPredicted)
			}
		}
	}
	r2, err := ml.R2(actual, pred)
	if err != nil {
		return 0
	}
	return r2
}
