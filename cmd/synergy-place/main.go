// Command synergy-place runs the joint (device, frequency) placement
// search over a heterogeneous fleet: for each benchmark it builds the
// full device × frequency grid from ground-truth sweeps, applies the
// fleet power budget, and selects the energy-optimal configuration for
// the requested target.
//
// Usage:
//
//	synergy-place -fleet h100,xeon8480,alveo -budget 330 -target ES_50
//	synergy-place -bench matmul -target MIN_ENERGY -json
//	synergy-place -predict -stride 8 -algo Linear
//	synergy-place -crossval
//
// With -predict the per-device models are trained on the micro-benchmark
// suite and the predicted placement is reported next to the ground-truth
// one. With -crossval every placement carries a static-vs-sweep roofline
// cross-check and the command exits non-zero on any disagreement.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"synergy/internal/benchsuite"
	"synergy/internal/features"
	"synergy/internal/hw"
	"synergy/internal/metrics"
	"synergy/internal/microbench"
	"synergy/internal/model"
	"synergy/internal/placement"
	"synergy/internal/sweep"
)

// result is the JSON output row for one benchmark.
type result struct {
	Benchmark string                 `json:"benchmark"`
	Placement placement.Placement    `json:"placement"`
	Predicted *placement.Placement   `json:"predicted,omitempty"`
	CrossVal  []placement.CrossCheck `json:"crossval,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("synergy-place: ")
	fleetArg := flag.String("fleet", "h100,xeon8480,alveo", "comma-separated fleet device list ("+strings.Join(hw.BuiltinNames(), ", ")+")")
	budget := flag.Float64("budget", 330, "fleet power budget in watts (0 = unconstrained)")
	benchArg := flag.String("bench", "", "benchmark name (empty = whole suite)")
	targetArg := flag.String("target", "ES_50", "energy target (MAX_PERF, MIN_ENERGY, MIN_EDP, MIN_ED2P, ES_x, PL_x)")
	predict := flag.Bool("predict", false, "also train per-device models and report the predicted placement")
	stride := flag.Int("stride", 8, "training-sweep frequency stride with -predict")
	algo := flag.String("algo", model.AlgoLinear, "training algorithm with -predict")
	crossval := flag.Bool("crossval", false, "cross-check static roofline vs sweep per device; exit non-zero on disagreement")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON")
	flag.Parse()

	target, err := metrics.ParseTarget(*targetArg)
	if err != nil {
		log.Fatal(err)
	}
	fleet, err := hw.FleetFromNames(strings.Split(*fleetArg, ","), hw.Budget{PowerW: *budget})
	if err != nil {
		log.Fatal(err)
	}

	var benches []*benchsuite.Benchmark
	if *benchArg == "" {
		benches = benchsuite.All()
	} else {
		b, err := benchsuite.ByName(*benchArg)
		if err != nil {
			log.Fatal(err)
		}
		benches = []*benchsuite.Benchmark{b}
	}

	var preds []*model.Predictor
	if *predict {
		preds, err = trainPredictors(fleet, *stride, *algo)
		if err != nil {
			log.Fatal(err)
		}
	}

	eng := sweep.Shared()
	results := make([]result, len(benches))
	err = eng.ForEach(len(benches), func(i int) error {
		bm := benches[i]
		g, err := placement.BuildGroundTruth(eng, fleet, bm.Kernel, bm.CharItems)
		if err != nil {
			return err
		}
		p, err := g.Select(target)
		if err != nil {
			return fmt.Errorf("%s: %w", bm.Name, err)
		}
		r := result{Benchmark: bm.Name, Placement: p}
		if preds != nil {
			v, err := features.Extract(bm.Kernel)
			if err != nil {
				return err
			}
			pg, err := placement.BuildPredicted(fleet, preds, v)
			if err != nil {
				return err
			}
			pp, err := pg.Select(target)
			if err != nil {
				return fmt.Errorf("%s (predicted): %w", bm.Name, err)
			}
			r.Predicted = &pp
		}
		if *crossval {
			checks, err := placement.CrossValidate(eng, fleet, bm.Kernel, bm.CharItems)
			if err != nil {
				return err
			}
			r.CrossVal = checks
		}
		results[i] = r
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		if err := enc.Encode(results); err != nil {
			log.Fatal(err)
		}
	} else {
		render(fleet, target, results, *predict)
	}

	if *crossval {
		bad := 0
		for _, r := range results {
			for _, c := range placement.Disagreements(r.CrossVal) {
				bad++
				fmt.Fprintf(os.Stderr, "crossval: %s on %s: static %v (alpha %.3f) vs sweep %v (alpha %.3f)\n",
					r.Benchmark, c.Device, c.StaticLabel, c.StaticAlpha, c.SweepLabel, c.SweepAlpha)
			}
		}
		if bad > 0 {
			log.Fatalf("crossval: %d roofline disagreements", bad)
		}
	}
}

// trainPredictors fits one model bundle per fleet device on the
// micro-benchmark suite, sweeping devices through the shared engine.
func trainPredictors(fleet *hw.Fleet, stride int, algo string) ([]*model.Predictor, error) {
	ks, err := microbench.Kernels(microbench.DefaultSet())
	if err != nil {
		return nil, err
	}
	preds := make([]*model.Predictor, len(fleet.Devices))
	for i, fd := range fleet.Devices {
		ts, err := model.CollectTraining(fd.Spec, ks, stride)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", fd.Key, err)
		}
		m, err := model.Train(fd.Spec, ts, algo)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", fd.Key, err)
		}
		p, err := m.NewPredictor()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", fd.Key, err)
		}
		preds[i] = p
	}
	return preds, nil
}

func render(fleet *hw.Fleet, target metrics.Target, results []result, predicted bool) {
	fmt.Printf("fleet %s under %s, target %s\n", fleet.Name, fleet.Budget, target)
	header := "%-14s %-9s %8s %7s %7s %8s"
	fmt.Printf(header+"\n", "benchmark", "device", "freqMHz", "ES%", "PL%", "fleetW")
	if predicted {
		fmt.Printf("%55s  %s\n", "", "(predicted device@freq)")
	}
	hits := 0
	for _, r := range results {
		p := r.Placement
		line := fmt.Sprintf(header, r.Benchmark, p.Device, fmt.Sprintf("%d", p.FreqMHz),
			fmt.Sprintf("%.1f", p.ESPct), fmt.Sprintf("%.1f", p.PLPct),
			fmt.Sprintf("%.0f", p.FleetPowerW))
		if r.Predicted != nil {
			mark := " "
			if r.Predicted.Device == p.Device && r.Predicted.FreqMHz == p.FreqMHz {
				mark = "="
				hits++
			}
			line += fmt.Sprintf("  %s %s@%d", mark, r.Predicted.Device, r.Predicted.FreqMHz)
		}
		fmt.Println(line)
	}
	if predicted && len(results) > 0 {
		fmt.Printf("predicted placement exact-match rate: %d/%d\n", hits, len(results))
	}
}
