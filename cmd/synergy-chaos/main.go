// Command synergy-chaos runs the seeded chaos soak against the
// simulated cluster stack: every episode throws a randomized-but-
// reproducible fault scenario (node death, denial storms, link jitter,
// dying ranks, epilogue crashes) at a full SLURM+MPI+SYnergy run and
// checks the resilience invariants — termination within the deadline,
// seed determinism, energy conservation, bounded retries, goroutine
// hygiene and closed privilege windows. Any violation exits non-zero,
// printing the episode seed needed to replay it.
//
// With -serve, the soak targets the advice daemon instead: scripted
// request sequences (with injected sweep stalls, predict blips,
// extract lag and reload faults) must replay byte-for-byte, and
// concurrent overload bursts racing advise traffic against hot reloads
// must satisfy the serve robustness invariants — exactly one terminal
// outcome per request, in-flight bounded by the gate, single-bundle
// response stamps, goroutine settling.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"synergy/internal/chaos"
	"synergy/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("synergy-chaos: ")
	seed := flag.Int64("seed", 1, "soak seed (derives every episode's scenario)")
	episodes := flag.Int("episodes", 25, "number of chaos episodes")
	nodes := flag.Int("nodes", 3, "cluster node count")
	jobNodes := flag.Int("job-nodes", 2, "nodes requested per job (headroom allows requeues)")
	gpus := flag.Int("gpus", 2, "GPUs per node")
	steps := flag.Int("steps", 3, "application timesteps per run")
	requeues := flag.Int("requeues", 2, "max scheduler requeues after node failures")
	deadline := flag.Duration("deadline", 30*time.Second, "real wall-clock deadline per attempt")
	verbose := flag.Bool("v", true, "print one line per episode")
	metricsOut := flag.String("metrics-out", "", "write the soak's telemetry exposition (episode/fault/violation counters) to this file")
	serveSoak := flag.Bool("serve", false, "soak the advice daemon (serve overload/reload chaos) instead of the cluster stack")
	flag.Parse()

	var reg *telemetry.Registry
	if *metricsOut != "" {
		reg = telemetry.NewRegistry()
	}
	if *serveSoak {
		runServeSoak(*seed, *episodes, *verbose, *metricsOut, reg)
		return
	}
	cfg := chaos.Config{
		Seed:        *seed,
		Episodes:    *episodes,
		Nodes:       *nodes,
		JobNodes:    *jobNodes,
		GPUsPerNode: *gpus,
		Steps:       *steps,
		MaxRequeues: *requeues,
		Deadline:    *deadline,
		Telemetry:   reg,
	}
	if *verbose {
		cfg.Logf = func(format string, args ...any) { fmt.Printf(format+"\n", args...) }
	}
	fmt.Printf("chaos soak: %d episodes, seed %d, %d nodes x %d GPUs, jobs on %d nodes\n",
		*episodes, *seed, *nodes, *gpus, *jobNodes)

	start := time.Now()
	rep, err := chaos.Soak(cfg)
	if err != nil {
		log.Fatal(err)
	}
	viols := rep.Violations()
	fmt.Printf("\n%d episodes, %d injected faults, archetypes %v, %v elapsed\n",
		len(rep.Episodes), rep.Faults(), rep.Archetypes(), time.Since(start).Round(time.Millisecond))
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := reg.WriteText(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("telemetry exposition written to %s\n", *metricsOut)
	}
	if len(viols) == 0 {
		fmt.Println("all resilience invariants held")
		return
	}
	fmt.Printf("%d INVARIANT VIOLATIONS:\n", len(viols))
	for _, v := range viols {
		fmt.Printf("  %s\n", v)
		for _, ep := range rep.Episodes {
			if ep.Episode == v.Episode {
				fmt.Printf("    replay: -seed %d -episodes 1 (scenario: %s)\n",
					ep.Seed, ep.Archetypes)
				break
			}
		}
	}
	os.Exit(1)
}

// runServeSoak is the -serve mode: chaos against the advice daemon.
func runServeSoak(seed int64, episodes int, verbose bool, metricsOut string, reg *telemetry.Registry) {
	cfg := chaos.ServeConfig{Seed: seed, Episodes: episodes, Telemetry: reg}
	if verbose {
		cfg.Logf = func(format string, args ...any) { fmt.Printf(format+"\n", args...) }
	}
	fmt.Printf("serve-chaos soak: %d episodes, seed %d\n", episodes, seed)
	start := time.Now()
	rep, err := chaos.ServeSoak(cfg)
	if err != nil {
		log.Fatal(err)
	}
	viols := rep.Violations()
	fmt.Printf("\n%d episodes, %d injected faults, archetypes %v, %v elapsed\n",
		len(rep.Episodes), rep.Faults(), rep.Archetypes(), time.Since(start).Round(time.Millisecond))
	if metricsOut != "" {
		f, err := os.Create(metricsOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := reg.WriteText(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("telemetry exposition written to %s\n", metricsOut)
	}
	if len(viols) == 0 {
		fmt.Println("all serve robustness invariants held")
		return
	}
	fmt.Printf("%d INVARIANT VIOLATIONS:\n", len(viols))
	for _, v := range viols {
		fmt.Printf("  %s\n", v)
	}
	os.Exit(1)
}
