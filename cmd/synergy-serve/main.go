// Command synergy-serve runs the frequency-advice daemon: an HTTP/JSON
// service that answers "at which core frequency should this kernel run
// for this energy target?" from one trained per-device model bundle.
//
// The bundle either comes from a synergy-train artifact (-bundle) or is
// trained at startup on the micro-benchmark suite. Endpoints:
//
//	POST /v1/advise  one advice request (features map or raw .kir)
//	POST /v1/batch   an array of advice requests
//	GET  /healthz    liveness + bundle identity
//	GET  /metrics    Prometheus-style text exposition
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"synergy/internal/hw"
	"synergy/internal/microbench"
	"synergy/internal/model"
	"synergy/internal/serve"
	"synergy/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("synergy-serve: ")
	addr := flag.String("addr", "127.0.0.1:8091", "listen address")
	bundle := flag.String("bundle", "", "trained model bundle (from synergy-train -save); trains at startup when empty")
	device := flag.String("device", "v100", "device to train for when no bundle is given (v100, a100, mi100, xeon)")
	algo := flag.String("algo", model.AlgoForest, "training algorithm when no bundle is given")
	stride := flag.Int("stride", 4, "training-sweep frequency stride when no bundle is given")
	flag.Parse()

	m, err := loadOrTrain(*bundle, *device, *algo, *stride)
	if err != nil {
		log.Fatal(err)
	}

	reg := telemetry.NewRegistry()
	srv, err := serve.New(m, reg)
	if err != nil {
		log.Fatal(err)
	}

	hs := &http.Server{Addr: *addr, Handler: srv}
	done := make(chan error, 1)
	go func() {
		log.Printf("serving %s/%s advice on http://%s", m.Spec.Name, m.Algo, *addr)
		done <- hs.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		log.Fatal(err)
	case s := <-sig:
		log.Printf("%v: shutting down", s)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	if err := <-done; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
}

// loadOrTrain resolves the model bundle: load the synergy-train
// artifact when given, otherwise run the §6.1 installation step here.
func loadOrTrain(bundle, device, algo string, stride int) (*model.Models, error) {
	if bundle != "" {
		f, err := os.Open(bundle)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return model.LoadModels(f)
	}
	spec, err := hw.SpecByName(device)
	if err != nil {
		return nil, err
	}
	kernels, err := microbench.Kernels(microbench.DefaultSet())
	if err != nil {
		return nil, err
	}
	log.Printf("no bundle given: training %s on %s (stride %d)", algo, spec.Name, stride)
	ts, err := model.CollectTraining(spec, kernels, stride)
	if err != nil {
		return nil, err
	}
	return model.Train(spec, ts, algo)
}
