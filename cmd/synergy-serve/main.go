// Command synergy-serve runs the frequency-advice daemon: an HTTP/JSON
// service that answers "at which core frequency should this kernel run
// for this energy target?" from one trained per-device model bundle.
//
// The bundle either comes from a synergy-train artifact (-bundle) or is
// trained at startup on the micro-benchmark suite. Endpoints:
//
//	POST /v1/advise      one advice request (features map or raw .kir)
//	POST /v1/batch       an array of advice requests
//	POST /v1/reload      validate + atomically swap the model bundle
//	GET  /healthz        liveness + bundle identity
//	GET  /readyz         readiness: ready | degraded | draining
//	GET  /metrics        Prometheus-style text exposition
//	GET  /metrics.json   canonical telemetry snapshot (synergy-top -serve)
//
// The daemon is overload-proof: concurrency is bounded by an admission
// gate (-max-inflight, -max-queue), every request runs under a deadline
// (X-Request-Deadline header, -default-deadline otherwise), excess load
// is shed with 429 + Retry-After, and a tripped ground-truth sweep
// degrades to model-only advice instead of failing. SIGHUP revalidates
// and hot-reloads the -bundle file without dropping a request; SIGINT/
// SIGTERM flip /readyz to draining, then drain within -drain-grace.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"synergy/internal/hw"
	"synergy/internal/microbench"
	"synergy/internal/model"
	"synergy/internal/serve"
	"synergy/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("synergy-serve: ")
	addr := flag.String("addr", "127.0.0.1:8091", "listen address")
	bundle := flag.String("bundle", "", "trained model bundle (from synergy-train -save); trains at startup when empty")
	device := flag.String("device", "v100", "device to train for when no bundle is given ("+strings.Join(hw.BuiltinNames(), ", ")+")")
	algo := flag.String("algo", model.AlgoForest, "training algorithm when no bundle is given")
	stride := flag.Int("stride", 4, "training-sweep frequency stride when no bundle is given")
	maxInFlight := flag.Int("max-inflight", 64, "max concurrently executing requests (admission gate)")
	maxQueue := flag.Int("max-queue", 256, "max requests waiting for a gate slot before shedding")
	defaultDeadline := flag.Duration("default-deadline", 30*time.Second, "request budget when the client sends no X-Request-Deadline")
	sweepTimeout := flag.Duration("sweep-timeout", 10*time.Second, "ground-truth sweep sub-budget before the response degrades")
	drainGrace := flag.Duration("drain-grace", 10*time.Second, "shutdown drain budget for in-flight requests")
	flag.Parse()

	m, err := loadOrTrain(*bundle, *device, *algo, *stride)
	if err != nil {
		log.Fatal(err)
	}

	reg := telemetry.NewRegistry()
	srv, err := serve.NewWithConfig(m, reg, serve.Config{
		MaxInFlight:     *maxInFlight,
		MaxQueue:        *maxQueue,
		DefaultDeadline: *defaultDeadline,
		SweepTimeout:    *sweepTimeout,
	})
	if err != nil {
		log.Fatal(err)
	}

	hs := &http.Server{
		Addr:    *addr,
		Handler: srv,
		// Slow-loris headers are cut off early; per-request body reads
		// are bounded by the request deadline inside the daemon.
		ReadHeaderTimeout: 10 * time.Second,
	}
	done := make(chan error, 1)
	go func() {
		log.Printf("serving %s/%s advice on http://%s (bundle %s, gate %d+%d)",
			m.Spec.Name, m.Algo, *addr, srv.BundleFingerprint(), *maxInFlight, *maxQueue)
		done <- hs.ListenAndServe()
	}()

	// SIGHUP hot-reloads the bundle file; SIGINT/SIGTERM drain and exit.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if *bundle == "" {
				log.Printf("SIGHUP: no -bundle file to reload from")
				continue
			}
			if err := srv.ReloadFromPath(*bundle); err != nil {
				log.Printf("SIGHUP: reload rejected, keeping bundle %s: %v", srv.BundleFingerprint(), err)
				continue
			}
			log.Printf("SIGHUP: reloaded bundle %s from %s", srv.BundleFingerprint(), *bundle)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		log.Fatal(err)
	case s := <-sig:
		log.Printf("%v: draining (grace %v)", s, *drainGrace)
	}
	// Readiness flips first so load balancers stop routing here, then
	// the listener drains in-flight requests within the grace budget.
	srv.StartDraining()
	ctx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		log.Fatalf("drain incomplete after %v: %v", *drainGrace, err)
	}
	if err := <-done; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	log.Printf("drained cleanly")
}

// loadOrTrain resolves the model bundle: load the synergy-train
// artifact when given, otherwise run the §6.1 installation step here.
func loadOrTrain(bundle, device, algo string, stride int) (*model.Models, error) {
	if bundle != "" {
		f, err := os.Open(bundle)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return model.LoadModels(f)
	}
	spec, err := hw.SpecByName(device)
	if err != nil {
		return nil, err
	}
	kernels, err := microbench.Kernels(microbench.DefaultSet())
	if err != nil {
		return nil, err
	}
	log.Printf("no bundle given: training %s on %s (stride %d)", algo, spec.Name, stride)
	ts, err := model.CollectTraining(spec, kernels, stride)
	if err != nil {
		return nil, err
	}
	return model.Train(spec, ts, algo)
}
