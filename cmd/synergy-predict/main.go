// Command synergy-predict runs the full prediction pipeline of §6.2 for
// one benchmark: it trains the per-device models on the micro-benchmark
// suite, extracts the benchmark kernel's static features, predicts the
// optimal frequency for the requested energy target and compares it with
// the ground-truth optimum.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"synergy/internal/benchsuite"
	"synergy/internal/features"
	"synergy/internal/hw"
	"synergy/internal/metrics"
	"synergy/internal/microbench"
	"synergy/internal/model"
	"synergy/internal/sweep"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("synergy-predict: ")
	device := flag.String("device", "v100", "target device ("+strings.Join(hw.BuiltinNames(), ", ")+")")
	benchName := flag.String("bench", "black_scholes", "benchmark kernel to predict for")
	targetArg := flag.String("target", "MIN_EDP", "energy target (MAX_PERF, MIN_ENERGY, MIN_EDP, MIN_ED2P, ES_x, PL_x)")
	algo := flag.String("algo", model.AlgoForest, "model algorithm (Linear, Lasso, RandomForest, SVR_RBF)")
	stride := flag.Int("stride", 4, "training-sweep frequency stride")
	load := flag.String("load", "", "load a trained model bundle (from synergy-train -save) instead of training")
	flag.Parse()

	spec, err := hw.SpecByName(*device)
	if err != nil {
		log.Fatal(err)
	}
	target, err := metrics.ParseTarget(*targetArg)
	if err != nil {
		log.Fatal(err)
	}
	bench, err := benchsuite.ByName(*benchName)
	if err != nil {
		log.Fatal(err)
	}

	var m *model.Models
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			log.Fatal(err)
		}
		m, err = model.LoadModels(f)
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
		if err != nil {
			log.Fatal(err)
		}
		if m.Spec.Name != spec.Name {
			log.Fatalf("bundle is for %s, requested device is %s", m.Spec.Name, spec.Name)
		}
	} else {
		kernels, err := microbench.Kernels(microbench.DefaultSet())
		if err != nil {
			log.Fatal(err)
		}
		ts, err := model.CollectTraining(spec, kernels, *stride)
		if err != nil {
			log.Fatal(err)
		}
		m, err = model.Train(spec, ts, *algo)
		if err != nil {
			log.Fatal(err)
		}
	}

	v, err := features.Extract(bench.Kernel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Kernel %s on %s\n", bench.Name, spec.Name)
	fmt.Printf("  static features: %s\n", v)

	predFreq, err := m.SearchFrequency(v, target)
	if err != nil {
		log.Fatal(err)
	}

	gt, err := sweep.GroundTruth(spec, bench.Kernel, bench.CharItems)
	if err != nil {
		log.Fatal(err)
	}
	actual, err := gt.Select(target)
	if err != nil {
		log.Fatal(err)
	}
	predPoint, ok := gt.PointAt(predFreq)
	if !ok {
		log.Fatalf("predicted frequency %d not in ground truth", predFreq)
	}
	actObj := metrics.ObjectiveValue(target, actual)
	preObj := metrics.ObjectiveValue(target, predPoint)
	ape := 0.0
	if actObj != 0 {
		ape = (preObj - actObj) / actObj
		if ape < 0 {
			ape = -ape
		}
	}
	fmt.Printf("  target %s (%s model):\n", target, m.Algo)
	fmt.Printf("    predicted frequency: %d MHz\n", predFreq)
	fmt.Printf("    actual optimum:      %d MHz\n", actual.FreqMHz)
	fmt.Printf("    objective at prediction vs optimum: %.4g vs %.4g (APE %.2f%%)\n",
		preObj, actObj, 100*ape)
	base := gt.BaselinePoint()
	fmt.Printf("    vs default (%d MHz): energy saving %.1f%%, perf loss %.1f%%\n",
		base.FreqMHz, gt.EnergySavingPct(predPoint), gt.PerfLossPct(predPoint))
}
