// Command synergy-opt runs the analysis-driven IR optimizer
// (internal/kernelir/opt) over suite benchmarks and .kir assembly
// files. For each target it prints the static instruction-count delta
// and per-pass rewrite tallies; -o writes the optimized kernel back out
// as .kir assembly (one file per kernel, named after the kernel), and
// -dump prints the optimized disassembly to stdout.
//
// Every optimization is translation-validated per pass (see the opt
// package); a kernel that fails validation is reported and left
// untouched, and the exit status is 1. Usage and load failures exit 2.
//
// Targets are benchmark names or paths ending in .kir; with no targets
// the whole 23-benchmark suite is optimized.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"synergy/internal/benchsuite"
	"synergy/internal/kernelir"
	"synergy/internal/kernelir/opt"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("synergy-opt", flag.ContinueOnError)
	fs.SetOutput(stderr)
	outDir := fs.String("o", "", "directory to write optimized .kir files into (created if missing)")
	dump := fs.Bool("dump", false, "print the optimized disassembly to stdout")
	diff := fs.Bool("diff", false, "print every rewrite with the analysis fact that licensed it")
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	kernels, err := loadTargets(fs.Args())
	if err != nil {
		fmt.Fprintf(stderr, "synergy-opt: %v\n", err)
		return 2
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(stderr, "synergy-opt: %v\n", err)
			return 2
		}
	}

	failed := false
	before, after := 0, 0
	for _, k := range kernels {
		ko, res := opt.CachedResult(k)
		if res.Err != nil {
			fmt.Fprintf(stderr, "synergy-opt: %s: %v\n", k.Name, res.Err)
			failed = true
			continue
		}
		before += res.Before
		after += res.After
		fmt.Fprintf(stdout, "%s: %d -> %d instructions (%s), %d hoisted%s\n",
			k.Name, res.Before, res.After, pct(res.Before, res.After), res.Hoisted, passSummary(res))
		if *diff {
			for _, rw := range res.Rewrites {
				fmt.Fprintf(stdout, "  %-9s pc %3d: %s\n", rw.Pass, rw.PC, rw.Note)
			}
		}
		if *dump {
			fmt.Fprint(stdout, ko.Disassemble())
		}
		if *outDir != "" {
			path := filepath.Join(*outDir, k.Name+".kir")
			if err := os.WriteFile(path, []byte(ko.Disassemble()), 0o644); err != nil {
				fmt.Fprintf(stderr, "synergy-opt: %v\n", err)
				return 2
			}
		}
	}
	if len(kernels) > 1 {
		fmt.Fprintf(stdout, "total: %d -> %d instructions (%s)\n", before, after, pct(before, after))
	}
	if failed {
		return 1
	}
	return 0
}

func pct(before, after int) string {
	if before == 0 {
		return "+0.0%"
	}
	return fmt.Sprintf("%+.1f%%", 100*float64(after-before)/float64(before))
}

func passSummary(res opt.Result) string {
	counts := res.PassCounts()
	if len(counts) == 0 {
		return ""
	}
	names := make([]string, 0, len(counts))
	for name := range counts {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, name := range names {
		parts[i] = fmt.Sprintf("%s %d", name, counts[name])
	}
	return "; " + strings.Join(parts, ", ")
}

// loadTargets resolves benchmark names and .kir files into kernels; no
// targets means the full suite.
func loadTargets(args []string) ([]*kernelir.Kernel, error) {
	if len(args) == 0 {
		all := benchsuite.All()
		ks := make([]*kernelir.Kernel, len(all))
		for i, b := range all {
			ks[i] = b.Kernel
		}
		return ks, nil
	}
	ks := make([]*kernelir.Kernel, 0, len(args))
	for _, arg := range args {
		if strings.HasSuffix(arg, ".kir") {
			text, err := os.ReadFile(arg)
			if err != nil {
				return nil, err
			}
			k, err := kernelir.Assemble(string(text))
			if err != nil {
				return nil, fmt.Errorf("%s: %w", arg, err)
			}
			ks = append(ks, k)
			continue
		}
		b, err := benchsuite.ByName(arg)
		if err != nil {
			return nil, err
		}
		ks = append(ks, b.Kernel)
	}
	return ks, nil
}
