package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestOptSummaryAndOutput drives the CLI end to end: optimize one
// benchmark, write the optimized .kir, and re-run the tool on that file
// — the second pass must be a no-op because Optimize is idempotent, so
// emitted kernels are already in normal form.
func TestOptSummaryAndOutput(t *testing.T) {
	dir := t.TempDir()
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-o", dir, "median"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "median: 67 -> 57 instructions") {
		t.Errorf("missing summary line:\n%s", stdout.String())
	}
	path := filepath.Join(dir, "median.kir")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("optimized file not written: %v", err)
	}

	stdout.Reset()
	if code := run([]string{path}, &stdout, &stderr); code != 0 {
		t.Fatalf("re-run exit = %d, want 0; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "median: 57 -> 57 instructions (+0.0%)") {
		t.Errorf("re-optimizing emitted normal form was not a no-op:\n%s", stdout.String())
	}
}

// TestOptFullSuiteReduces runs the default full-suite mode and pins
// that the aggregate static delta is a genuine reduction.
func TestOptFullSuiteReduces(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0; stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	i := strings.Index(out, "total: ")
	if i < 0 {
		t.Fatalf("missing total line:\n%s", out)
	}
	if !strings.Contains(out[i:], "-") {
		t.Errorf("aggregate delta is not a reduction: %s", out[i:])
	}
}

// TestOptUnknownTarget pins the load-failure exit code.
func TestOptUnknownTarget(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"no_such_kernel"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}
