// Command synergy-lint runs the kernel IR static analyzer
// (internal/kernelir/analysis) over suite benchmarks and .kir assembly
// files: reaching definitions (uninitialized reads), dead stores / dead
// code / unused parameters, interval-based local-memory bounds and the
// static roofline classification against a device spec.
//
// Targets are benchmark names or paths ending in .kir (assembly as
// printed by Kernel.Disassemble); with no targets the whole benchmark
// suite is linted. The exit status is 1 when any kernel has
// error-severity findings (or warnings under -strict), 2 on usage or
// load failures.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"synergy/internal/benchsuite"
	"synergy/internal/hw"
	"synergy/internal/kernelir"
	"synergy/internal/kernelir/analysis"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("synergy-lint: ")
	device := flag.String("device", "v100", "device spec for the roofline pass (v100, a100, mi100, xeon, none)")
	asJSON := flag.Bool("json", false, "emit reports as a JSON array")
	strict := flag.Bool("strict", false, "treat warnings as errors for the exit status")
	quiet := flag.Bool("quiet", false, "only print kernels with findings")
	flag.Parse()

	var spec *hw.Spec
	if *device != "none" {
		s, err := hw.SpecByName(*device)
		if err != nil {
			log.Println(err)
			os.Exit(2)
		}
		spec = s
	}

	kernels, err := loadTargets(flag.Args())
	if err != nil {
		log.Println(err)
		os.Exit(2)
	}

	opts := analysis.Options{Spec: spec}
	reports := make([]*analysis.Report, 0, len(kernels))
	bad := false
	for _, k := range kernels {
		r := analysis.Analyze(k, opts)
		reports = append(reports, r)
		if !r.Clean() || (*strict && !r.Quiet()) {
			bad = true
		}
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			log.Println(err)
			os.Exit(2)
		}
	} else {
		for _, r := range reports {
			if *quiet && r.Quiet() {
				continue
			}
			fmt.Print(r.Render())
		}
	}
	if bad {
		os.Exit(1)
	}
}

// loadTargets resolves benchmark names and .kir files into kernels; no
// targets means the full suite.
func loadTargets(args []string) ([]*kernelir.Kernel, error) {
	if len(args) == 0 {
		all := benchsuite.All()
		ks := make([]*kernelir.Kernel, len(all))
		for i, b := range all {
			ks[i] = b.Kernel
		}
		return ks, nil
	}
	ks := make([]*kernelir.Kernel, 0, len(args))
	for _, arg := range args {
		if strings.HasSuffix(arg, ".kir") {
			text, err := os.ReadFile(arg)
			if err != nil {
				return nil, err
			}
			k, err := kernelir.Assemble(string(text))
			if err != nil {
				return nil, fmt.Errorf("%s: %w", arg, err)
			}
			ks = append(ks, k)
			continue
		}
		b, err := benchsuite.ByName(arg)
		if err != nil {
			return nil, err
		}
		ks = append(ks, b.Kernel)
	}
	return ks, nil
}
