// Command synergy-lint runs the kernel IR static analyzer
// (internal/kernelir/analysis) over suite benchmarks and .kir assembly
// files: reaching definitions (uninitialized reads), dead stores / dead
// code / unused parameters, interval-based local-memory bounds and the
// static roofline classification against a device spec.
//
// With -opt, each kernel is additionally run through the IR optimizer
// (internal/kernelir/opt) and its static instruction-count delta is
// reported per pass; -diff also prints every rewrite with the analysis
// fact that licensed it. -opt cannot be combined with -json, whose
// schema is the pinned []analysis.Report.
//
// Targets are benchmark names or paths ending in .kir (assembly as
// printed by Kernel.Disassemble); with no targets the whole benchmark
// suite is linted. The exit status is 1 when any kernel has
// error-severity findings (or warnings under -strict), 2 on usage or
// load failures.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"synergy/internal/benchsuite"
	"synergy/internal/hw"
	"synergy/internal/kernelir"
	"synergy/internal/kernelir/analysis"
	"synergy/internal/kernelir/opt"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable streams and argv, so tests can pin the
// CLI behavior (including the -json schema) without a subprocess.
func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("synergy-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	device := fs.String("device", "v100", "device spec for the roofline pass ("+strings.Join(hw.BuiltinNames(), ", ")+", none)")
	asJSON := fs.Bool("json", false, "emit reports as a JSON array")
	strict := fs.Bool("strict", false, "treat warnings as errors for the exit status")
	quiet := fs.Bool("quiet", false, "only print kernels with findings")
	doOpt := fs.Bool("opt", false, "run the IR optimizer and report instruction-count deltas")
	doDiff := fs.Bool("diff", false, "with the optimizer, print every rewrite and its licensing fact (implies -opt)")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if *doDiff {
		*doOpt = true
	}
	if *doOpt && *asJSON {
		fmt.Fprintln(stderr, "synergy-lint: -opt cannot be combined with -json (the JSON schema is the plain report array)")
		return 2
	}

	var spec *hw.Spec
	if *device != "none" {
		s, err := hw.SpecByName(*device)
		if err != nil {
			fmt.Fprintf(stderr, "synergy-lint: %v\n", err)
			return 2
		}
		spec = s
	}

	kernels, err := loadTargets(fs.Args())
	if err != nil {
		fmt.Fprintf(stderr, "synergy-lint: %v\n", err)
		return 2
	}

	opts := analysis.Options{Spec: spec}
	reports := make([]*analysis.Report, 0, len(kernels))
	bad := false
	for _, k := range kernels {
		r := analysis.Analyze(k, opts)
		reports = append(reports, r)
		if !r.Clean() || (*strict && !r.Quiet()) {
			bad = true
		}
	}

	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fmt.Fprintf(stderr, "synergy-lint: %v\n", err)
			return 2
		}
	} else {
		for i, r := range reports {
			if *quiet && r.Quiet() && !*doOpt {
				continue
			}
			fmt.Fprint(stdout, r.Render())
			if *doOpt {
				renderOpt(stdout, kernels[i], *doDiff)
			}
		}
		if *doOpt {
			renderOptTotal(stdout, kernels)
		}
	}
	if bad {
		return 1
	}
	return 0
}

// renderOpt prints one kernel's optimizer summary (and, with diff, the
// full justification log).
func renderOpt(w io.Writer, k *kernelir.Kernel, diff bool) {
	_, res := opt.CachedResult(k)
	if res.Err != nil {
		fmt.Fprintf(w, "  opt: failed safe: %v\n", res.Err)
		return
	}
	fmt.Fprintf(w, "  opt: %d -> %d instructions (%s)%s\n",
		res.Before, res.After, pct(res.Before, res.After), passSummary(res))
	if diff {
		for _, rw := range res.Rewrites {
			fmt.Fprintf(w, "    %-9s pc %3d: %s\n", rw.Pass, rw.PC, rw.Note)
		}
	}
}

// renderOptTotal prints the aggregate static delta across all targets.
func renderOptTotal(w io.Writer, kernels []*kernelir.Kernel) {
	before, after := 0, 0
	for _, k := range kernels {
		_, res := opt.CachedResult(k)
		if res.Err != nil {
			before += len(k.Body)
			after += len(k.Body)
			continue
		}
		before += res.Before
		after += res.After
	}
	fmt.Fprintf(w, "total: %d -> %d instructions (%s)\n", before, after, pct(before, after))
}

func pct(before, after int) string {
	if before == 0 {
		return "+0.0%"
	}
	return fmt.Sprintf("%+.1f%%", 100*float64(after-before)/float64(before))
}

func passSummary(res opt.Result) string {
	counts := res.PassCounts()
	if len(counts) == 0 {
		return ""
	}
	names := make([]string, 0, len(counts))
	for name := range counts {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, name := range names {
		parts[i] = fmt.Sprintf("%s %d", name, counts[name])
	}
	return "; " + strings.Join(parts, ", ")
}

// loadTargets resolves benchmark names and .kir files into kernels; no
// targets means the full suite.
func loadTargets(args []string) ([]*kernelir.Kernel, error) {
	if len(args) == 0 {
		all := benchsuite.All()
		ks := make([]*kernelir.Kernel, len(all))
		for i, b := range all {
			ks[i] = b.Kernel
		}
		return ks, nil
	}
	ks := make([]*kernelir.Kernel, 0, len(args))
	for _, arg := range args {
		if strings.HasSuffix(arg, ".kir") {
			text, err := os.ReadFile(arg)
			if err != nil {
				return nil, err
			}
			k, err := kernelir.Assemble(string(text))
			if err != nil {
				return nil, fmt.Errorf("%s: %w", arg, err)
			}
			ks = append(ks, k)
			continue
		}
		b, err := benchsuite.ByName(arg)
		if err != nil {
			return nil, err
		}
		ks = append(ks, b.Kernel)
	}
	return ks, nil
}
