package main

import (
	"bytes"
	"flag"
	"os"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestJSONGolden pins the -json output byte for byte: the JSON array of
// analysis.Report is the machine-facing schema of the tool, and any
// field rename, reorder or formatting change must show up as a
// deliberate golden update, not drift.
func TestJSONGolden(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", "-device", "v100", "testdata/uninit.kir"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (fixture has error findings); stderr: %s", code, stderr.String())
	}
	const golden = "testdata/uninit.golden.json"
	if *update {
		if err := os.WriteFile(golden, stdout.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stdout.Bytes(), want) {
		t.Errorf("-json output drifted from %s (run with -update to accept):\n got: %s\nwant: %s",
			golden, stdout.Bytes(), want)
	}
}

// TestOptJSONConflict pins the refusal to mix -opt into the JSON
// schema.
func TestOptJSONConflict(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-opt", "-json"}, &stdout, &stderr); code != 2 {
		t.Fatalf("-opt -json exit = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "-opt cannot be combined with -json") {
		t.Errorf("missing conflict message, got: %s", stderr.String())
	}
}

// TestOptTextOutput smoke-tests the optimizer summary lines: per-kernel
// delta, aggregate total, and under -diff one justification line per
// rewrite.
func TestOptTextOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-quiet", "-opt", "median"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0; stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "opt: 67 -> 57 instructions") {
		t.Errorf("missing per-kernel opt summary:\n%s", out)
	}
	if !strings.Contains(out, "total: 67 -> 57 instructions") {
		t.Errorf("missing aggregate total:\n%s", out)
	}

	stdout.Reset()
	if code := run([]string{"-quiet", "-diff", "median"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-diff exit = %d, want 0; stderr: %s", code, stderr.String())
	}
	diffOut := stdout.String()
	if !strings.Contains(diffOut, "dce") || !strings.Contains(diffOut, "pc") {
		t.Errorf("-diff output lacks rewrite justification lines:\n%s", diffOut)
	}
}

// TestUnknownTarget pins the load-failure exit code.
func TestUnknownTarget(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"no_such_kernel"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}
