// Command synergy-report regenerates the paper's tables and figures
// from the reproduction and prints them as text tables.
//
// Usage:
//
//	synergy-report -fig 1|2|4|5|7|8|9|10
//	synergy-report -table 1|2
//	synergy-report -all
//	synergy-report -fleet h100,xeon8480,alveo -budget 330
//
// The model-based outputs (Fig. 9, Table 2) train on the micro-benchmark
// suite first; -stride trades training-sweep resolution for speed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"synergy/internal/apps"
	"synergy/internal/hw"
	"synergy/internal/metrics"
	"synergy/internal/microbench"
	"synergy/internal/model"
	"synergy/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("synergy-report: ")
	fig := flag.Int("fig", 0, "figure number to regenerate (1, 2, 4, 5, 7, 8, 9, 10)")
	tab := flag.Int("table", 0, "table number to regenerate (1, 2)")
	all := flag.Bool("all", false, "regenerate everything")
	ablation := flag.Bool("ablation", false, "run the fine- vs coarse-grained tuning ablation (§2.2)")
	stride := flag.Int("stride", 4, "training-sweep frequency stride for model-based outputs")
	nodes := flag.Int("nodes", 16, "maximum node count for the Fig. 10 scaling study")
	fleetArg := flag.String("fleet", "", "comma-separated device list for the fleet placement report (e.g. h100,xeon8480,alveo)")
	budget := flag.Float64("budget", 0, "fleet power budget in watts for -fleet (0 = unconstrained)")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON instead of text tables")
	flag.Parse()
	jsonMode = *asJSON

	if !*all && *fig == 0 && *tab == 0 && !*ablation && *fleetArg == "" {
		flag.Usage()
		os.Exit(2)
	}

	if *fleetArg != "" {
		fleet, err := hw.FleetFromNames(strings.Split(*fleetArg, ","), hw.Budget{PowerW: *budget})
		if err != nil {
			log.Fatalf("fleet: %v", err)
		}
		rep, err := report.BuildFleetReport(fleet, nil)
		if err != nil {
			log.Fatalf("fleet report: %v", err)
		}
		if err := emit(rep); err != nil {
			log.Fatal(err)
		}
		if !*all && *fig == 0 && *tab == 0 && !*ablation {
			return
		}
	}

	if *ablation {
		if err := runAblation(*stride); err != nil {
			log.Fatalf("ablation: %v", err)
		}
		if !*all && *fig == 0 && *tab == 0 {
			return
		}
	}

	run := func(n int, f func() error) {
		if err := f(); err != nil {
			log.Fatalf("figure/table %d: %v", n, err)
		}
	}

	// Fig. 9 and Table 2 share one model evaluation (training four
	// algorithms and sweeping the whole suite); build it once and reuse —
	// with -all it used to be trained and evaluated twice over.
	var modelEval *report.ModelEvaluation
	evaluation := func() (*report.ModelEvaluation, error) {
		if modelEval != nil {
			return modelEval, nil
		}
		m, err := report.BuildModelEvaluation(hw.V100(), *stride)
		if err != nil {
			return nil, err
		}
		modelEval = m
		return m, nil
	}

	figs := map[int]func() error{
		1: func() error { return emit(report.BuildFig1()) },
		2: func() error { return renderChars(report.BuildFig2, "Figure 2 (V100)") },
		4: func() error {
			f, err := report.BuildFig4()
			if err != nil {
				return err
			}
			return emit(f)
		},
		5: func() error {
			f, err := report.BuildFig5()
			if err != nil {
				return err
			}
			return emit(f)
		},
		7: func() error { return renderChars(report.BuildFig7, "Figure 7 (V100)") },
		8: func() error { return renderChars(report.BuildFig8, "Figure 8 (MI100)") },
		9: func() error {
			m, err := evaluation()
			if err != nil {
				return err
			}
			for _, tgt := range metrics.StandardTargets {
				fmt.Println(m.RenderFig9(tgt))
			}
			return nil
		},
		10: func() error {
			cfg := report.DefaultFig10Config()
			cfg.NodeCounts = nodeCounts(*nodes)
			pts, err := report.BuildFig10(cfg)
			if err != nil {
				return err
			}
			fmt.Println(report.RenderFig10(pts))
			return nil
		},
	}
	tables := map[int]func() error{
		1: func() error {
			t1, err := report.BuildTable1()
			if err != nil {
				return err
			}
			return emit(t1)
		},
		2: func() error {
			m, err := evaluation()
			if err != nil {
				return err
			}
			fmt.Println(m.RenderTable2())
			return nil
		},
	}

	if *all {
		for _, n := range []int{1, 2, 4, 5, 7, 8} {
			run(n, figs[n])
		}
		run(1, tables[1])
		run(2, tables[2])
		run(9, figs[9])
		run(10, figs[10])
		return
	}
	if *fig != 0 {
		f, ok := figs[*fig]
		if !ok {
			log.Fatalf("no builder for figure %d", *fig)
		}
		run(*fig, f)
	}
	if *tab != 0 {
		f, ok := tables[*tab]
		if !ok {
			log.Fatalf("no builder for table %d", *tab)
		}
		run(*tab, f)
	}
}

func renderChars(build func() ([]*report.Characterization, error), title string) error {
	chars, err := build()
	if err != nil {
		return err
	}
	if jsonMode {
		return emit(chars)
	}
	fmt.Println(title)
	for _, c := range chars {
		fmt.Println(c.Render())
	}
	return nil
}

// jsonMode switches output to machine-readable JSON.
var jsonMode bool

// renderer is anything with a text rendering.
type renderer interface{ Render() string }

// emit prints v as JSON in json mode, or via its Render method.
func emit(v any) error {
	if jsonMode {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		return enc.Encode(v)
	}
	if r, ok := v.(renderer); ok {
		fmt.Println(r.Render())
		return nil
	}
	return fmt.Errorf("no text renderer for %T", v)
}

func runAblation(stride int) error {
	spec := hw.V100()
	ks, err := microbench.Kernels(microbench.DefaultSet())
	if err != nil {
		return err
	}
	adv, err := model.DefaultAdvisor(spec, ks, stride)
	if err != nil {
		return err
	}
	for _, app := range []*apps.App{apps.NewCloverLeaf(), apps.NewMiniWeather()} {
		a, err := report.BuildAblation(report.AblationConfig{
			Spec: spec, App: app, Advisor: adv,
			LocalNx: 16384, LocalNy: 16384, Steps: 8,
			StateRows: 8, FunctionalCap: 128, FreqStride: 8,
		})
		if err != nil {
			return err
		}
		fmt.Println(a.Render())
	}
	return nil
}

func nodeCounts(maxNodes int) []int {
	var out []int
	for n := 1; n <= maxNodes; n *= 2 {
		out = append(out, n)
	}
	return out
}
