// Command synergy-top runs one seeded cluster workload with the
// unified telemetry layer attached everywhere — scheduler, governor,
// MPI fabric, vendor shims and devices — and renders the resulting
// registry. The default output is a top-style per-device table derived
// entirely from the telemetry snapshot (the table is itself a consumer
// of the metrics, not a second accounting path); -metrics switches to
// the Prometheus-style text exposition, -json to the full canonical
// snapshot (metrics + spans), and -trace additionally writes a Chrome
// trace with the span hierarchy injected as its own process.
//
// Every run is deterministic: the stack advances device virtual time
// only, so repeated invocations with the same flags produce
// byte-identical -metrics and -json output.
//
// With -serve URL the command runs no workload at all: it scrapes a
// live synergy-serve daemon's /metrics.json endpoint and renders the
// serve-side table instead — requests by route and outcome, sheds and
// degraded responses by reason, reload results, admission-gate gauges
// and request-latency quantiles from the serve_request_seconds
// histogram. -metrics and -json re-render the scraped snapshot the
// same way they render a local run's.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"synergy/internal/apps"
	"synergy/internal/hw"
	"synergy/internal/metrics"
	"synergy/internal/microbench"
	"synergy/internal/model"
	"synergy/internal/mpi"
	"synergy/internal/slurm"
	"synergy/internal/sweep"
	"synergy/internal/telemetry"
	"synergy/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("synergy-top: ")
	appArg := flag.String("app", "cloverleaf", "application: cloverleaf or miniweather")
	nodes := flag.Int("nodes", 2, "cluster node count")
	gpus := flag.Int("gpus", 2, "GPUs per node")
	steps := flag.Int("steps", 4, "application timesteps")
	nx := flag.Int("nx", 4096, "per-rank virtual grid width")
	ny := flag.Int("ny", 4096, "per-rank virtual grid height")
	targetArg := flag.String("target", "MIN_EDP",
		"energy target for per-kernel frequency scaling, or 'none' for default clocks")
	stride := flag.Int("stride", 8, "training-sweep frequency stride")
	showMetrics := flag.Bool("metrics", false, "print the Prometheus-style text exposition instead of the table")
	showJSON := flag.Bool("json", false, "print the canonical telemetry snapshot (metrics + spans) as JSON")
	traceOut := flag.String("trace", "", "write a span-augmented Chrome-trace JSON to this file")
	serveURL := flag.String("serve", "", "scrape a running synergy-serve daemon at this base URL and render its serve table instead of running a workload")
	flag.Parse()
	if *showMetrics && *showJSON {
		log.Fatal("-metrics and -json are mutually exclusive")
	}

	if *serveURL != "" {
		if *traceOut != "" {
			log.Fatal("-trace needs a local run; it cannot be combined with -serve")
		}
		snap, err := scrapeServe(*serveURL)
		if err != nil {
			log.Fatal(err)
		}
		switch {
		case *showMetrics:
			if err := snap.WriteText(os.Stdout); err != nil {
				log.Fatal(err)
			}
		case *showJSON:
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(snap); err != nil {
				log.Fatal(err)
			}
		default:
			printServeTable(snap, *serveURL)
		}
		return
	}

	var app *apps.App
	switch *appArg {
	case "cloverleaf":
		app = apps.NewCloverLeaf()
	case "miniweather":
		app = apps.NewMiniWeather()
	default:
		log.Fatalf("unknown app %q", *appArg)
	}

	spec := hw.V100()
	reg := telemetry.NewRegistry()
	sweep.Shared().SetTelemetry(reg)

	// Train the energy models and plan the run, unless scaling is off.
	var plan apps.FreqPlan
	if *targetArg != "none" {
		tgt, err := metrics.ParseTarget(*targetArg)
		if err != nil {
			log.Fatal(err)
		}
		kernels, err := microbench.Kernels(microbench.DefaultSet())
		if err != nil {
			log.Fatal(err)
		}
		adv, err := model.DefaultAdvisor(spec, kernels, *stride)
		if err != nil {
			log.Fatal(err)
		}
		plan, err = apps.PlanFromAdvisor(app, adv, *nx**ny, tgt)
		if err != nil {
			log.Fatal(err)
		}
	}

	// Build the cluster with the plugin installed and the registry
	// attached: the scheduler, every GPU, and (through RunConfig) the
	// governor, MPI fabric and span tree all record into it.
	var clusterNodes []*slurm.Node
	for i := 0; i < *nodes; i++ {
		clusterNodes = append(clusterNodes, slurm.NewNode(fmt.Sprintf("r%03d", i), spec, *gpus, slurm.GresNVGpuFreq))
	}
	cluster := slurm.NewCluster(clusterNodes...)
	cluster.RegisterPlugin(&slurm.NVGpuFreqPlugin{Controller: cluster})
	cluster.SetTelemetry(reg)

	var result *apps.RunResult
	var devices []*hw.Device
	jobRes, err := cluster.Submit(&slurm.Job{
		Name:      fmt.Sprintf("%s-top", app.Name),
		User:      "researcher",
		NumNodes:  *nodes,
		Exclusive: true,
		Gres:      map[slurm.GRES]bool{slurm.GresNVGpuFreq: true},
		Run: func(alloc *slurm.Allocation) error {
			devices = alloc.GPUs()
			res, err := apps.Run(app, apps.RunConfig{
				Spec:          spec,
				Nodes:         *nodes,
				GPUsPerNode:   *gpus,
				LocalNx:       *nx,
				LocalNy:       *ny,
				Steps:         *steps,
				StateRows:     8,
				FunctionalCap: 512,
				Plan:          plan,
				Net:           mpi.EDRFabric(),
				Devices:       devices,
				User:          "researcher",
				Telemetry:     reg,
			})
			if err != nil {
				return err
			}
			result = res
			return nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if jobRes.Err != nil {
		log.Fatal(jobRes.Err)
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		var tds []trace.Device
		for _, d := range devices {
			tds = append(tds, trace.Device{Label: d.Label(), Dev: d})
		}
		if err := trace.ExportWith(f, tds, reg.Spans()); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}

	snap := reg.Snapshot()
	switch {
	case *showMetrics:
		if err := snap.WriteText(os.Stdout); err != nil {
			log.Fatal(err)
		}
	case *showJSON:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snap); err != nil {
			log.Fatal(err)
		}
	default:
		printTable(snap, result, devices, app.Name, *targetArg)
	}
	if *traceOut != "" && !*showMetrics && !*showJSON {
		fmt.Printf("\nChrome trace written to %s\n", *traceOut)
	}
}

// printTable renders the top-style view. Every number comes out of the
// telemetry snapshot (counters, gauges, spans); the run result only
// supplies the headline job line.
func printTable(snap telemetry.Snapshot, res *apps.RunResult, devices []*hw.Device, appName, target string) {
	fmt.Printf("synergy-top: %s, %d ranks, target %s\n", appName, res.Ranks, target)
	fmt.Printf("job: time %.4f s  energy %.1f J  clock sets %d  degradations %d\n\n",
		res.TimeSec, res.EnergyJ, res.ClockSets,
		snap.CounterTotal("synergy_degradations_total"))

	fmt.Printf("%-12s %8s %8s %7s %10s %12s %8s\n",
		"DEVICE", "KERNELS", "CLKSETS", "RETRIES", "TIME(s)", "ENERGY(J)", "AVG(W)")
	for _, d := range devices {
		label := d.Label()
		kernels := snap.CounterValue("synergy_kernels_total", "device", label)
		clkSets := snap.CounterValue("synergy_clock_sets_applied_total", "device", label)
		retries := snap.CounterValue("synergy_clock_set_retries_total", "device", label)
		timeS := snap.GaugeValue("synergy_device_time_seconds", "device", label)
		energy := snap.GaugeValue("synergy_device_energy_joules", "device", label)
		avgW := 0.0
		if timeS > 0 {
			avgW = energy / timeS
		}
		fmt.Printf("%-12s %8d %8d %7d %10.4f %12.1f %8.1f\n",
			label, kernels, clkSets, retries, timeS, energy, avgW)
	}

	fmt.Printf("\nmpi: %d sends, %d retransmits, %d barriers, %d allreduces\n",
		snap.CounterTotal("synergy_mpi_sends_total"),
		snap.CounterTotal("synergy_mpi_send_retransmits_total"),
		snap.CounterTotal("synergy_mpi_barriers_total"),
		snap.CounterTotal("synergy_mpi_allreduces_total"))
	fmt.Printf("sweep: %d hits, %d misses, %d evictions\n",
		snap.CounterValue("synergy_sweep_requests_total", "result", "hit"),
		snap.CounterValue("synergy_sweep_requests_total", "result", "miss"),
		snap.CounterTotal("synergy_sweep_evictions_total"))
	kinds := map[string]int64{}
	for _, s := range snap.Spans {
		kinds[s.Kind]++
	}
	fmt.Printf("spans: %d job, %d rank, %d kernel, %d total\n",
		kinds["job"], kinds["rank"], kinds["kernel"], int64(len(snap.Spans)))
}

// scrapeServe fetches a live daemon's canonical telemetry snapshot
// from its /metrics.json endpoint.
func scrapeServe(base string) (telemetry.Snapshot, error) {
	url := strings.TrimSuffix(base, "/")
	if !strings.HasPrefix(url, "http://") && !strings.HasPrefix(url, "https://") {
		url = "http://" + url
	}
	if !strings.HasSuffix(url, "/metrics.json") {
		url += "/metrics.json"
	}
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return telemetry.Snapshot{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return telemetry.Snapshot{}, fmt.Errorf("scrape %s: %s", url, resp.Status)
	}
	var snap telemetry.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return telemetry.Snapshot{}, fmt.Errorf("scrape %s: %v", url, err)
	}
	return snap, nil
}

// printServeTable renders the daemon-side view of the snapshot:
// traffic by route and outcome, overload decisions, reloads, gate
// occupancy and latency quantiles.
func printServeTable(snap telemetry.Snapshot, url string) {
	fmt.Printf("synergy-top: serve daemon at %s\n", url)
	fmt.Printf("requests: %d total  advises %d  predictions %d  errors %d\n",
		snap.CounterTotal("serve_requests_total"),
		snap.CounterValue("serve_advises_total"),
		snap.CounterValue("serve_predictions_total"),
		snap.CounterValue("serve_errors_total"))
	fmt.Printf("gate: in-flight %.0f  queued %.0f\n\n",
		snap.GaugeValue("serve_inflight"),
		snap.GaugeValue("serve_queue_depth"))

	fmt.Printf("%-10s %-14s %8s\n", "ROUTE", "OUTCOME", "COUNT")
	for _, c := range counterFamily(snap, "serve_requests_total") {
		ls := parseLabelSet(c.Labels)
		fmt.Printf("%-10s %-14s %8d\n", ls["route"], ls["outcome"], c.Value)
	}

	fmt.Printf("\nshed: %s\n", labeledSummary(snap, "serve_shed_total", "reason"))
	fmt.Printf("degraded: %s\n", labeledSummary(snap, "serve_degraded_total", "reason"))
	fmt.Printf("reloads: %s\n", labeledSummary(snap, "serve_reloads_total", "result"))

	if h, err := snap.MergedHistogram("serve_request_seconds"); err == nil && h.Count > 0 {
		fmt.Printf("\nlatency: p50 %s  p90 %s  p99 %s  (%d samples)\n",
			fmtSeconds(bucketQuantile(h, 0.50)),
			fmtSeconds(bucketQuantile(h, 0.90)),
			fmtSeconds(bucketQuantile(h, 0.99)),
			h.Count)
	}
}

// counterFamily returns every series of one counter family, in the
// snapshot's canonical (label-sorted) order.
func counterFamily(snap telemetry.Snapshot, name string) []telemetry.CounterValue {
	var out []telemetry.CounterValue
	for _, c := range snap.Counters {
		if c.Name == name {
			out = append(out, c)
		}
	}
	return out
}

// labeledSummary renders a counter family keyed by one label as
// "val=count, val=count" ("none" when the family has no series).
func labeledSummary(snap telemetry.Snapshot, name, label string) string {
	var parts []string
	for _, c := range counterFamily(snap, name) {
		parts = append(parts, fmt.Sprintf("%s=%d", parseLabelSet(c.Labels)[label], c.Value))
	}
	if len(parts) == 0 {
		return "none"
	}
	sort.Strings(parts)
	return strings.Join(parts, ", ")
}

// parseLabelSet decodes a rendered label string like
// {outcome="ok",route="advise"} back into a map. Serve label values
// never contain quotes or commas, so a split-based parse suffices.
func parseLabelSet(s string) map[string]string {
	out := map[string]string{}
	s = strings.TrimSuffix(strings.TrimPrefix(s, "{"), "}")
	for _, pair := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(pair, "=")
		if !ok {
			continue
		}
		out[k] = strings.Trim(v, `"`)
	}
	return out
}

// bucketQuantile estimates a quantile from histogram buckets with
// linear interpolation inside the target bucket; samples in the
// overflow bucket report as the top finite bound.
func bucketQuantile(h telemetry.HistogramSnapshot, q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	rank := q * float64(h.Count)
	cum := uint64(0)
	for i, b := range h.Bounds {
		prev := cum
		cum += h.Counts[i]
		if float64(cum) >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.Bounds[i-1]
			}
			if h.Counts[i] == 0 {
				return b
			}
			frac := (rank - float64(prev)) / float64(h.Counts[i])
			if frac < 0 {
				frac = 0
			}
			return lo + (b-lo)*frac
		}
	}
	if len(h.Bounds) > 0 {
		return h.Bounds[len(h.Bounds)-1]
	}
	return 0
}

// fmtSeconds renders a latency in the most readable unit.
func fmtSeconds(s float64) string {
	switch {
	case s >= 1:
		return fmt.Sprintf("%.2fs", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.1fms", s*1e3)
	default:
		return fmt.Sprintf("%.0fµs", s*1e6)
	}
}
