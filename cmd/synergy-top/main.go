// Command synergy-top runs one seeded cluster workload with the
// unified telemetry layer attached everywhere — scheduler, governor,
// MPI fabric, vendor shims and devices — and renders the resulting
// registry. The default output is a top-style per-device table derived
// entirely from the telemetry snapshot (the table is itself a consumer
// of the metrics, not a second accounting path); -metrics switches to
// the Prometheus-style text exposition, -json to the full canonical
// snapshot (metrics + spans), and -trace additionally writes a Chrome
// trace with the span hierarchy injected as its own process.
//
// Every run is deterministic: the stack advances device virtual time
// only, so repeated invocations with the same flags produce
// byte-identical -metrics and -json output.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"synergy/internal/apps"
	"synergy/internal/hw"
	"synergy/internal/metrics"
	"synergy/internal/microbench"
	"synergy/internal/model"
	"synergy/internal/mpi"
	"synergy/internal/slurm"
	"synergy/internal/sweep"
	"synergy/internal/telemetry"
	"synergy/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("synergy-top: ")
	appArg := flag.String("app", "cloverleaf", "application: cloverleaf or miniweather")
	nodes := flag.Int("nodes", 2, "cluster node count")
	gpus := flag.Int("gpus", 2, "GPUs per node")
	steps := flag.Int("steps", 4, "application timesteps")
	nx := flag.Int("nx", 4096, "per-rank virtual grid width")
	ny := flag.Int("ny", 4096, "per-rank virtual grid height")
	targetArg := flag.String("target", "MIN_EDP",
		"energy target for per-kernel frequency scaling, or 'none' for default clocks")
	stride := flag.Int("stride", 8, "training-sweep frequency stride")
	showMetrics := flag.Bool("metrics", false, "print the Prometheus-style text exposition instead of the table")
	showJSON := flag.Bool("json", false, "print the canonical telemetry snapshot (metrics + spans) as JSON")
	traceOut := flag.String("trace", "", "write a span-augmented Chrome-trace JSON to this file")
	flag.Parse()
	if *showMetrics && *showJSON {
		log.Fatal("-metrics and -json are mutually exclusive")
	}

	var app *apps.App
	switch *appArg {
	case "cloverleaf":
		app = apps.NewCloverLeaf()
	case "miniweather":
		app = apps.NewMiniWeather()
	default:
		log.Fatalf("unknown app %q", *appArg)
	}

	spec := hw.V100()
	reg := telemetry.NewRegistry()
	sweep.Shared().SetTelemetry(reg)

	// Train the energy models and plan the run, unless scaling is off.
	var plan apps.FreqPlan
	if *targetArg != "none" {
		tgt, err := metrics.ParseTarget(*targetArg)
		if err != nil {
			log.Fatal(err)
		}
		kernels, err := microbench.Kernels(microbench.DefaultSet())
		if err != nil {
			log.Fatal(err)
		}
		adv, err := model.DefaultAdvisor(spec, kernels, *stride)
		if err != nil {
			log.Fatal(err)
		}
		plan, err = apps.PlanFromAdvisor(app, adv, *nx**ny, tgt)
		if err != nil {
			log.Fatal(err)
		}
	}

	// Build the cluster with the plugin installed and the registry
	// attached: the scheduler, every GPU, and (through RunConfig) the
	// governor, MPI fabric and span tree all record into it.
	var clusterNodes []*slurm.Node
	for i := 0; i < *nodes; i++ {
		clusterNodes = append(clusterNodes, slurm.NewNode(fmt.Sprintf("r%03d", i), spec, *gpus, slurm.GresNVGpuFreq))
	}
	cluster := slurm.NewCluster(clusterNodes...)
	cluster.RegisterPlugin(&slurm.NVGpuFreqPlugin{Controller: cluster})
	cluster.SetTelemetry(reg)

	var result *apps.RunResult
	var devices []*hw.Device
	jobRes, err := cluster.Submit(&slurm.Job{
		Name:      fmt.Sprintf("%s-top", app.Name),
		User:      "researcher",
		NumNodes:  *nodes,
		Exclusive: true,
		Gres:      map[slurm.GRES]bool{slurm.GresNVGpuFreq: true},
		Run: func(alloc *slurm.Allocation) error {
			devices = alloc.GPUs()
			res, err := apps.Run(app, apps.RunConfig{
				Spec:          spec,
				Nodes:         *nodes,
				GPUsPerNode:   *gpus,
				LocalNx:       *nx,
				LocalNy:       *ny,
				Steps:         *steps,
				StateRows:     8,
				FunctionalCap: 512,
				Plan:          plan,
				Net:           mpi.EDRFabric(),
				Devices:       devices,
				User:          "researcher",
				Telemetry:     reg,
			})
			if err != nil {
				return err
			}
			result = res
			return nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if jobRes.Err != nil {
		log.Fatal(jobRes.Err)
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		var tds []trace.Device
		for _, d := range devices {
			tds = append(tds, trace.Device{Label: d.Label(), Dev: d})
		}
		if err := trace.ExportWith(f, tds, reg.Spans()); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}

	snap := reg.Snapshot()
	switch {
	case *showMetrics:
		if err := snap.WriteText(os.Stdout); err != nil {
			log.Fatal(err)
		}
	case *showJSON:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snap); err != nil {
			log.Fatal(err)
		}
	default:
		printTable(snap, result, devices, app.Name, *targetArg)
	}
	if *traceOut != "" && !*showMetrics && !*showJSON {
		fmt.Printf("\nChrome trace written to %s\n", *traceOut)
	}
}

// printTable renders the top-style view. Every number comes out of the
// telemetry snapshot (counters, gauges, spans); the run result only
// supplies the headline job line.
func printTable(snap telemetry.Snapshot, res *apps.RunResult, devices []*hw.Device, appName, target string) {
	fmt.Printf("synergy-top: %s, %d ranks, target %s\n", appName, res.Ranks, target)
	fmt.Printf("job: time %.4f s  energy %.1f J  clock sets %d  degradations %d\n\n",
		res.TimeSec, res.EnergyJ, res.ClockSets,
		snap.CounterTotal("synergy_degradations_total"))

	fmt.Printf("%-12s %8s %8s %7s %10s %12s %8s\n",
		"DEVICE", "KERNELS", "CLKSETS", "RETRIES", "TIME(s)", "ENERGY(J)", "AVG(W)")
	for _, d := range devices {
		label := d.Label()
		kernels := snap.CounterValue("synergy_kernels_total", "device", label)
		clkSets := snap.CounterValue("synergy_clock_sets_applied_total", "device", label)
		retries := snap.CounterValue("synergy_clock_set_retries_total", "device", label)
		timeS := snap.GaugeValue("synergy_device_time_seconds", "device", label)
		energy := snap.GaugeValue("synergy_device_energy_joules", "device", label)
		avgW := 0.0
		if timeS > 0 {
			avgW = energy / timeS
		}
		fmt.Printf("%-12s %8d %8d %7d %10.4f %12.1f %8.1f\n",
			label, kernels, clkSets, retries, timeS, energy, avgW)
	}

	fmt.Printf("\nmpi: %d sends, %d retransmits, %d barriers, %d allreduces\n",
		snap.CounterTotal("synergy_mpi_sends_total"),
		snap.CounterTotal("synergy_mpi_send_retransmits_total"),
		snap.CounterTotal("synergy_mpi_barriers_total"),
		snap.CounterTotal("synergy_mpi_allreduces_total"))
	fmt.Printf("sweep: %d hits, %d misses, %d evictions\n",
		snap.CounterValue("synergy_sweep_requests_total", "result", "hit"),
		snap.CounterValue("synergy_sweep_requests_total", "result", "miss"),
		snap.CounterTotal("synergy_sweep_evictions_total"))
	kinds := map[string]int64{}
	for _, s := range snap.Spans {
		kinds[s.Kind]++
	}
	fmt.Printf("spans: %d job, %d rank, %d kernel, %d total\n",
		kinds["job"], kinds["rank"], kinds["kernel"], int64(len(snap.Spans)))
}
