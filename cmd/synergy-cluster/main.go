// Command synergy-cluster reproduces the multi-node experiment of §8.4
// end to end, including the scheduler layer: it builds a simulated
// Marconi-100-style cluster (nodes of 4 V100 GPUs, nvgpufreq GRES and
// plugin installed), trains the energy models, and for each scale
// submits exclusive SLURM jobs — baseline plus one per energy target —
// whose scripts run the SYCL+MPI application with per-kernel frequency
// scaling under the plugin's temporary privilege window.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"synergy/internal/apps"
	"synergy/internal/core"
	"synergy/internal/hw"
	"synergy/internal/metrics"
	"synergy/internal/microbench"
	"synergy/internal/model"
	"synergy/internal/mpi"
	"synergy/internal/slurm"
	"synergy/internal/sweep"
	"synergy/internal/telemetry"
	"synergy/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("synergy-cluster: ")
	appArg := flag.String("app", "both", "application: cloverleaf, miniweather or both")
	maxNodes := flag.Int("nodes", 16, "maximum node count (scales 1, 2, 4, ... up to this)")
	gpusPerNode := flag.Int("gpus", 4, "GPUs per node")
	steps := flag.Int("steps", 10, "timesteps per run")
	nx := flag.Int("nx", 16384, "per-rank virtual grid width")
	ny := flag.Int("ny", 16384, "per-rank virtual grid height")
	stride := flag.Int("stride", 8, "training-sweep frequency stride")
	targetsArg := flag.String("targets", "MIN_EDP,ES_25,ES_50,ES_75,PL_25,PL_50,PL_75",
		"comma-separated energy targets")
	traceOut := flag.String("trace", "", "write a Chrome-trace JSON of the first node's GPU timelines to this file")
	profile := flag.Bool("profile", false, "print the per-kernel energy profile of every run")
	metricsOut := flag.String("metrics-out", "", "write the full telemetry exposition of the experiment to this file")
	flag.Parse()

	// With -metrics-out, one registry observes the whole experiment:
	// scheduler, sweep engine, and (through the run config) every job's
	// governor, fabric and span tree. It also augments -trace with the
	// span hierarchy.
	var reg *telemetry.Registry
	if *metricsOut != "" {
		reg = telemetry.NewRegistry()
		sweep.Shared().SetTelemetry(reg)
	}

	spec := hw.V100()
	var appList []*apps.App
	switch *appArg {
	case "cloverleaf":
		appList = []*apps.App{apps.NewCloverLeaf()}
	case "miniweather":
		appList = []*apps.App{apps.NewMiniWeather()}
	case "both":
		appList = []*apps.App{apps.NewCloverLeaf(), apps.NewMiniWeather()}
	default:
		log.Fatalf("unknown app %q", *appArg)
	}
	var targets []metrics.Target
	for _, s := range strings.Split(*targetsArg, ",") {
		t, err := metrics.ParseTarget(strings.TrimSpace(s))
		if err != nil {
			log.Fatal(err)
		}
		targets = append(targets, t)
	}

	// Build the cluster at the largest scale, with the plugin installed.
	var nodes []*slurm.Node
	for i := 0; i < *maxNodes; i++ {
		nodes = append(nodes, slurm.NewNode(fmt.Sprintf("r%03d", i), spec, *gpusPerNode, slurm.GresNVGpuFreq))
	}
	cluster := slurm.NewCluster(nodes...)
	cluster.RegisterPlugin(&slurm.NVGpuFreqPlugin{Controller: cluster})
	cluster.SetTelemetry(reg)
	fmt.Printf("Cluster: %d nodes x %d %s GPUs, nvgpufreq plugin active\n",
		*maxNodes, *gpusPerNode, spec.Name)

	// Train the per-device models once (§6.1).
	kernels, err := microbench.Kernels(microbench.DefaultSet())
	if err != nil {
		log.Fatal(err)
	}
	adv, err := model.DefaultAdvisor(spec, kernels, *stride)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Energy models trained on the micro-benchmark suite (%d pooled sweeps)\n",
		sweep.Shared().Evaluations())

	defer func() {
		if *metricsOut != "" {
			f, err := os.Create(*metricsOut)
			if err != nil {
				log.Fatal(err)
			}
			if err := reg.WriteText(f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("\nTelemetry exposition written to %s\n", *metricsOut)
		}
		if *traceOut == "" {
			return
		}
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		var tds []trace.Device
		for i, g := range nodes[0].GPUs {
			tds = append(tds, trace.Device{Label: fmt.Sprintf("%s/gpu%d", nodes[0].Name, i), Dev: g})
		}
		if err := trace.ExportWith(f, tds, reg.Spans()); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nChrome trace written to %s\n", *traceOut)
	}()

	items := *nx * *ny
	fmt.Printf("\n%-12s %-8s %5s %12s %14s %9s\n", "App", "Target", "GPUs", "Time(s)", "Energy(J)", "Saving%")
	for _, app := range appList {
		plans := map[string]apps.FreqPlan{}
		for _, tgt := range targets {
			plan, err := apps.PlanFromAdvisor(app, adv, items, tgt)
			if err != nil {
				log.Fatal(err)
			}
			plans[tgt.String()] = plan
		}
		for n := 1; n <= *maxNodes; n *= 2 {
			baseline, err := submitRun(cluster, app, spec, n, *gpusPerNode, *nx, *ny, *steps, nil, *profile, reg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-12s %-8s %5d %12.4f %14.1f %9s\n",
				app.Name, "default", baseline.Ranks, baseline.TimeSec, baseline.EnergyJ, "-")
			for _, tgt := range targets {
				res, err := submitRun(cluster, app, spec, n, *gpusPerNode, *nx, *ny, *steps, plans[tgt.String()], *profile, reg)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("%-12s %-8s %5d %12.4f %14.1f %9.1f\n",
					app.Name, tgt, res.Ranks, res.TimeSec, res.EnergyJ,
					100*(1-res.EnergyJ/baseline.EnergyJ))
				if *profile {
					fmt.Print(core.RenderProfile(res.Kernels))
				}
			}
		}
	}
}

// submitRun submits one exclusive, GRES-tagged SLURM job running the
// application across the allocation's GPUs as a regular user.
func submitRun(cluster *slurm.Cluster, app *apps.App, spec *hw.Spec,
	nodes, gpusPerNode, nx, ny, steps int, plan apps.FreqPlan, profile bool,
	reg *telemetry.Registry) (*apps.RunResult, error) {
	var result *apps.RunResult
	jobRes, err := cluster.Submit(&slurm.Job{
		Name:      fmt.Sprintf("%s-%dn", app.Name, nodes),
		User:      "researcher",
		NumNodes:  nodes,
		Exclusive: true,
		Gres:      map[slurm.GRES]bool{slurm.GresNVGpuFreq: true},
		Run: func(alloc *slurm.Allocation) error {
			cfg := apps.RunConfig{
				Spec:          spec,
				Nodes:         nodes,
				GPUsPerNode:   gpusPerNode,
				LocalNx:       nx,
				LocalNy:       ny,
				Steps:         steps,
				StateRows:     8,
				FunctionalCap: 512,
				Plan:          plan,
				Net:           mpi.EDRFabric(),
				Devices:       alloc.GPUs(),
				User:          "researcher",
				Profile:       profile,
				Telemetry:     reg,
			}
			res, err := apps.Run(app, cfg)
			if err != nil {
				return err
			}
			result = res
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	if jobRes.Err != nil {
		return nil, jobRes.Err
	}
	return result, nil
}
